"""Property tests for the load-bearing trace invariant.

For every traced query, the span tree's leaf costs must sum *exactly* to the
CostCounter's per-category totals — no unit charged outside a span, none
double-counted by merges.  And because the tracer hook is a no-op when
disabled, a traced run must charge the identical RAM-model cost as an
untraced one.  Both properties are checked here for every index family and
for the serving layer (unsharded and S = 4 sharded), including a 200+-query
randomized acceptance sweep.
"""

import random

import pytest

from repro.core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from repro.core.dim_reduction import DimReductionOrpKw
from repro.core.lc_kw import LcKwIndex
from repro.core.nn_l2 import L2NnIndex
from repro.core.nn_linf import LinfNnIndex
from repro.core.orp_kw import OrpKwIndex
from repro.core.planner import STRATEGIES, HybridPlanner
from repro.core.srp_kw import SrpKwIndex
from repro.core.transform import QueryStats
from repro.costmodel import CATEGORIES, CostCounter
from repro.dataset import Dataset, make_objects
from repro.geometry.halfspaces import rect_to_halfspaces
from repro.geometry.rectangles import Rect
from repro.ksi import BitsetKSI, KSetIndex, NaiveKSI
from repro.service import QueryEngine, ShardedQueryEngine
from repro.trace import TraceSpan, Tracer


def build_dataset(seed: int, integral: bool = False, dim: int = 2) -> Dataset:
    rng = random.Random(seed)
    count = rng.randint(40, 100)
    if integral:
        seen = set()
        points = []
        while len(points) < count:
            p = tuple(float(rng.randint(0, 25)) for _ in range(dim))
            if p not in seen:
                seen.add(p)
                points.append(p)
    else:
        points = [
            tuple(rng.uniform(0, 10) for _ in range(dim)) for _ in range(count)
        ]
    docs = [rng.sample(range(1, 9), rng.randint(1, 4)) for _ in range(count)]
    return Dataset(make_objects(points, docs))


def random_rect(rng) -> Rect:
    a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
    c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
    return Rect((a, c), (b, d))


def assert_leaf_sums_match(root: TraceSpan, counter: CostCounter) -> None:
    """The invariant: span-tree leaves account for every charged unit."""
    leaf = root.leaf_costs()
    for category in CATEGORIES:
        assert leaf.get(category, 0) == counter[category], (
            category,
            leaf,
            counter.snapshot(),
        )
    assert root.subtree_total() == counter.total


def traced_run(run) -> tuple:
    """Run ``run(counter)`` under a tracer; return (finished root, counter)."""
    counter = CostCounter()
    tracer = Tracer()
    counter.tracer = tracer
    run(counter)
    return tracer.finish(), counter


def family_runs(seed: int):
    """(name, run(counter)) for one random query on every index family."""
    rng = random.Random(seed)
    dataset = build_dataset(seed)
    int_dataset = build_dataset(seed + 1, integral=True)
    rect = random_rect(rng)
    words = rng.sample(range(1, 9), 2)
    q = (rng.uniform(0, 10), rng.uniform(0, 10))
    qi = (float(rng.randint(0, 25)), float(rng.randint(0, 25)))
    t = rng.randint(1, 4)
    halfspaces = list(rect_to_halfspaces(rect.lo, rect.hi))
    sets = [
        [e for e in range(40) if rng.random() < 0.3] or [0] for _ in range(6)
    ]
    ids = rng.sample(range(6), 2)

    orp = OrpKwIndex(dataset, k=2)
    lc = LcKwIndex(dataset, k=2)
    srp = SrpKwIndex(int_dataset, k=2)
    dim_red = DimReductionOrpKw(build_dataset(seed + 2, dim=3), k=2)
    rect3 = Rect(
        tuple(rng.uniform(-1, 4) for _ in range(3)),
        tuple(rng.uniform(6, 11) for _ in range(3)),
    )
    nn_l2 = L2NnIndex(int_dataset, k=2)
    nn_linf = LinfNnIndex(dataset, k=2)
    planner = HybridPlanner(dataset, k=2)
    kset = KSetIndex(sets, k=2)
    naive_ksi = NaiveKSI(sets)
    bitset = BitsetKSI(sets)

    return [
        ("orp_kw", lambda c: orp.query(rect, words, c)),
        ("lc_kw", lambda c: lc.query(halfspaces, words, c)),
        ("srp_kw", lambda c: srp.query_squared(qi, 9.0, words, c)),
        ("dim_reduction", lambda c: dim_red.query(rect3, words, c)),
        ("nn_l2", lambda c: nn_l2.query(qi, t, words, c)),
        ("nn_linf", lambda c: nn_linf.query(q, t, words, c)),
        ("planner", lambda c: planner.query(rect, words, c)),
        ("ksi_kset", lambda c: kset.report(ids, c)),
        ("ksi_naive", lambda c: naive_ksi.report(ids, c)),
        ("ksi_bitset", lambda c: bitset.report(ids, c)),
    ]


@pytest.mark.parametrize("seed", range(3))
def test_leaf_sums_match_counter_for_every_family(seed):
    for name, run in family_runs(seed):
        root, counter = traced_run(run)
        assert counter.total > 0, name
        assert_leaf_sums_match(root, counter)


@pytest.mark.parametrize("seed", range(3))
def test_tracing_never_changes_charged_costs(seed):
    """A traced run and an untraced run charge identical per-category costs."""
    for name, run in family_runs(seed):
        _, traced = traced_run(run)
        plain = CostCounter()
        run(plain)
        assert traced.snapshot() == plain.snapshot(), name


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_planner_query_with_leaf_sums(strategy):
    dataset = build_dataset(11)
    planner = HybridPlanner(dataset, k=2)
    rng = random.Random(12)
    for _ in range(5):
        rect = random_rect(rng)
        words = rng.sample(range(1, 9), 2)
        root, counter = traced_run(
            lambda c: planner.query_with(strategy, rect, words, c)
        )
        assert_leaf_sums_match(root, counter)
        assert root.find(strategy, "planner") is not None


def test_span_depth_matches_index_recursion_depth():
    """``depth=ℓ`` spans mirror the kd-tree descent level-for-level."""
    dataset = build_dataset(21)
    orp = OrpKwIndex(dataset, k=2)
    rng = random.Random(22)
    for _ in range(6):
        rect = random_rect(rng)
        words = rng.sample(range(1, 9), 2)
        stats = QueryStats()
        counter = CostCounter()
        tracer = Tracer()
        counter.tracer = tracer
        orp.query(rect, words, counter, stats=stats)
        root = tracer.finish()
        span_levels = set()
        for span in root.walk():
            if span.name.startswith("depth=") and span.component == "orp_kw":
                span_levels.add(int(span.name.split("=", 1)[1]))
        assert span_levels == set(stats.visited_levels)
        # Nesting is strict: a depth=ℓ span's depth-children are exactly ℓ+1.
        for span in root.walk():
            if not span.name.startswith("depth="):
                continue
            level = int(span.name.split("=", 1)[1])
            for child in span.children:
                if child.name.startswith("depth="):
                    assert int(child.name.split("=", 1)[1]) == level + 1


@pytest.mark.parametrize("shards", [0, 4])
def test_acceptance_sweep_engine_leaf_sums_and_cost_parity(shards):
    """200+ seeded random queries: leaf-sum invariant + tracing cost parity.

    Runs the full serving path (unsharded, then S = 4 sharded) with tracing
    on, checks every query's span tree sums to its recorded cost, and
    replays the same query on a tracing-off twin engine to confirm the
    charged totals are bit-identical.
    """
    queries_checked = 0
    for seed in range(3):
        dataset = build_dataset(seed + 40)
        if shards:
            traced = ShardedQueryEngine(
                dataset, shards=shards, max_k=3, cache_size=0, tracing=True
            )
            plain = ShardedQueryEngine(
                dataset, shards=shards, max_k=3, cache_size=0
            )
        else:
            traced = QueryEngine(dataset, max_k=3, cache_size=0, tracing=True)
            plain = QueryEngine(dataset, max_k=3, cache_size=0)
        rng = random.Random(seed + 60)
        for _ in range(35):
            rect = random_rect(rng)
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            budget = rng.choice([None, 4096, 64])
            counter = CostCounter()
            traced.query(rect, words, budget=budget, counter=counter)
            record = traced.last_record
            assert record.trace is not None
            root = TraceSpan.from_dict(record.trace)
            leaf = root.leaf_costs()
            for category in CATEGORIES:
                assert leaf.get(category, 0) == record.cost.get(category, 0)
            assert root.subtree_total() == record.cost.get("total", 0)
            assert counter.total == record.cost.get("total", 0)

            plain_counter = CostCounter()
            plain.query(rect, words, budget=budget, counter=plain_counter)
            assert plain.last_record.trace is None
            assert plain_counter.snapshot() == counter.snapshot()
            queries_checked += 1
    assert queries_checked >= 105  # 2 parametrizations -> 210 total


def test_sharded_trace_has_one_span_per_shard():
    dataset = build_dataset(77)
    engine = ShardedQueryEngine(
        dataset, shards=4, max_k=3, cache_size=0, tracing=True
    )
    engine.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
    root = TraceSpan.from_dict(engine.last_record.trace)
    shard_spans = [
        s.name for s in root.children if s.component == "sharding"
    ]
    assert shard_spans == [f"shard-{i}" for i in range(4)]


def test_engine_strategy_coverage_under_tracing():
    """Every strategy the engine picks appears as an engine-component span."""
    dataset = build_dataset(88)
    engine = QueryEngine(dataset, max_k=3, cache_size=0, tracing=True)
    rng = random.Random(89)
    seen = set()
    for _ in range(30):
        rect = random_rect(rng)
        words = rng.sample(range(1, 9), rng.randint(1, 3))
        engine.query(rect, words, budget=rng.choice([None, 2048, 32]))
        record = engine.last_record
        root = TraceSpan.from_dict(record.trace)
        chosen = record.strategy
        assert root.find(chosen, "engine") is not None, record.trace
        seen.add(chosen)
    assert len(seen) >= 2, seen


def test_baseline_runs_also_satisfy_invariant():
    """Even pure-scan baselines route charges through the span tree."""
    dataset = build_dataset(99)
    structured = StructuredOnlyIndex(dataset)
    keywords = KeywordsOnlyIndex(dataset)
    rng = random.Random(100)
    rect = random_rect(rng)
    words = rng.sample(range(1, 9), 2)
    for run in (
        lambda c: structured.query_rect(rect, words, c),
        lambda c: keywords.query_rect(rect, words, c),
    ):
        root, counter = traced_run(run)
        assert_leaf_sums_match(root, counter)

"""Unit tests for repro.partitiontree (tree + schemes + cells)."""

import math

import numpy as np
import pytest

from repro.costmodel import CostCounter
from repro.errors import GeometryError, ValidationError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect
from repro.geometry.regions import ConvexRegion, EverythingRegion, RectRegion
from repro.geometry.simplex import Simplex
from repro.partitiontree import (
    ConvexCell,
    KdBoxScheme,
    PartitionTree,
    WillardScheme,
)


def random_points(rng, n, d=2):
    return np.array([[rng.random() for _ in range(d)] for _ in range(n)])


class TestConvexCell:
    def test_from_rect(self):
        cell = ConvexCell.from_rect(Rect((0.0, 0.0), (2.0, 1.0)))
        assert cell.contains_point((1.0, 0.5))
        assert not cell.contains_point((3.0, 0.5))
        assert cell.lo == (0.0, 0.0)
        assert cell.hi == (2.0, 1.0)

    def test_boundary(self):
        cell = ConvexCell.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))
        assert cell.boundary_contains((0.0, 0.5))
        assert not cell.boundary_contains((0.5, 0.5))

    def test_clip_halves_a_square(self):
        cell = ConvexCell.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))
        half = cell.clip(HalfSpace((1.0, 0.0), 0.5))
        assert half.contains_point((0.25, 0.5))
        assert not half.contains_point((0.75, 0.5))
        assert half.hi[0] == pytest.approx(0.5)

    def test_clip_to_empty_raises(self):
        cell = ConvexCell.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))
        with pytest.raises(GeometryError):
            cell.clip(HalfSpace((1.0, 0.0), -5.0))

    def test_diagonal_clip(self):
        cell = ConvexCell.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))
        tri = cell.clip(HalfSpace((1.0, 1.0), 1.0))
        assert tri.contains_point((0.2, 0.2))
        assert not tri.contains_point((0.9, 0.9))
        # Triangle with vertices (0,0), (1,0), (0,1).
        assert len(tri.vertices) == 3

    def test_3d_clip_unsupported(self):
        cell = ConvexCell.from_rect(Rect((0.0,) * 3, (1.0,) * 3))
        with pytest.raises(GeometryError):
            cell.clip(HalfSpace((1.0, 0.0, 0.0), 0.5))


class TestKdBoxScheme:
    def test_tree_builds_and_balances(self, rng):
        pts = random_points(rng, 128)
        tree = PartitionTree(pts, scheme=KdBoxScheme())
        for node in tree.nodes():
            assert node.size <= math.ceil(128 / 2**node.level)

    def test_simplex_query_agrees_with_brute_force(self, rng):
        pts = random_points(rng, 140)
        tree = PartitionTree(pts, scheme=KdBoxScheme())
        for _ in range(20):
            verts = [(rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)) for _ in range(3)]
            try:
                simplex = Simplex(verts)
            except GeometryError:
                continue
            region = ConvexRegion.from_simplex(simplex)
            got = sorted(tree.region_query(region))
            want = sorted(i for i in range(140) if simplex.contains(pts[i]))
            assert got == want

    def test_3d_supported(self, rng):
        pts = random_points(rng, 60, d=3)
        tree = PartitionTree(pts, scheme=KdBoxScheme())
        region = ConvexRegion([HalfSpace((1.0, 1.0, 1.0), 1.5)])
        got = sorted(tree.region_query(region))
        want = sorted(i for i in range(60) if sum(pts[i]) <= 1.5 + 1e-9)
        assert got == want


class TestWillardScheme:
    def test_tree_builds_with_polygon_cells(self, rng):
        pts = random_points(rng, 100)
        tree = PartitionTree(pts, scheme=WillardScheme())
        assert isinstance(tree.root.cell, ConvexCell)
        # Points stay within their node cells all the way down.
        for node in tree.nodes():
            if node.is_leaf:
                for idx in node.indices:
                    assert node.cell.contains_point(pts[idx])

    def test_queries_agree_with_brute_force(self, rng):
        pts = random_points(rng, 120)
        tree = PartitionTree(pts, scheme=WillardScheme())
        for _ in range(15):
            verts = [(rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)) for _ in range(3)]
            try:
                simplex = Simplex(verts)
            except GeometryError:
                continue
            region = ConvexRegion.from_simplex(simplex)
            got = sorted(tree.region_query(region))
            want = sorted(i for i in range(120) if simplex.contains(pts[i]))
            assert got == want

    def test_fanout_shrinks_levels(self, rng):
        pts = random_points(rng, 256)
        tree = PartitionTree(pts, scheme=WillardScheme())
        # 4-way fanout: height about log4(256) = 4, allow generous slack.
        assert tree.height() <= 10

    def test_line_crossing_sublinear(self, rng):
        """The Willard guarantee: an oblique line crosses O(n^0.79) cells."""
        n = 2048
        pts = random_points(rng, n)
        tree = PartitionTree(pts, scheme=WillardScheme())
        # A thin oblique band standing in for a line.
        band = ConvexRegion(
            [HalfSpace((1.0, -1.0), 0.002), HalfSpace((-1.0, 1.0), 0.002)]
        )
        crossing = tree.count_crossing_nodes(band)
        assert crossing <= 14 * n ** (math.log(3) / math.log(4))

    def test_duplicate_points_fall_back_gracefully(self):
        pts = np.array([[0.5, 0.5]] * 40)
        tree = PartitionTree(pts, scheme=WillardScheme())
        assert sorted(tree.region_query(EverythingRegion(2))) == list(range(40))

    def test_rejects_non_2d(self, rng):
        pts = random_points(rng, 20, d=3)
        with pytest.raises(ValidationError):
            PartitionTree(pts, scheme=WillardScheme(), root_cell=ConvexCell.from_rect(Rect((0.0,)*3, (1.0,)*3)))


class TestPartitionTreeGeneric:
    def test_everything_region_reports_all(self, rng):
        pts = random_points(rng, 70)
        tree = PartitionTree(pts)
        assert sorted(tree.region_query(EverythingRegion(2))) == list(range(70))

    def test_rect_region(self, rng):
        pts = random_points(rng, 90)
        tree = PartitionTree(pts)
        rect = Rect((0.25, 0.25), (0.75, 0.75))
        got = sorted(tree.region_query(RectRegion(rect)))
        want = sorted(i for i in range(90) if rect.contains_point(pts[i]))
        assert got == want

    def test_counter_charged(self, rng):
        pts = random_points(rng, 50)
        tree = PartitionTree(pts)
        counter = CostCounter()
        tree.region_query(EverythingRegion(2), counter)
        assert counter["objects_examined"] == 50

    def test_validation(self):
        with pytest.raises(ValidationError):
            PartitionTree(np.empty((0, 2)))
        with pytest.raises(ValidationError):
            PartitionTree(np.zeros((5, 2)), leaf_size=0)

    def test_coincident_points_become_fat_leaf(self):
        pts = np.array([[1.0, 1.0]] * 10)
        tree = PartitionTree(pts, scheme=KdBoxScheme())
        assert sorted(tree.region_query(EverythingRegion(2))) == list(range(10))

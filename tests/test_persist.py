"""Unit tests for repro.persist."""

import pickle

import pytest

from repro.core.lc_kw import LcKwIndex
from repro.core.orp_kw import OrpKwIndex
from repro.errors import ValidationError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect
from repro.persist import FORMAT_VERSION, load_index, save_index

from helpers import random_dataset


class TestRoundTrip:
    def test_orp_round_trip(self, rng, tmp_path):
        ds = random_dataset(rng, 80)
        index = OrpKwIndex(ds, k=2)
        path = tmp_path / "orp.idx"
        save_index(index, path)
        loaded = load_index(path)
        rect = Rect((2.0, 2.0), (8.0, 8.0))
        for _ in range(10):
            words = rng.sample(range(1, 9), 2)
            assert sorted(o.oid for o in loaded.query(rect, words)) == sorted(
                o.oid for o in index.query(rect, words)
            )

    def test_lc_round_trip(self, rng, tmp_path):
        ds = random_dataset(rng, 60)
        index = LcKwIndex(ds, k=2)
        path = tmp_path / "lc.idx"
        save_index(index, path)
        loaded = load_index(path, expected_class=LcKwIndex)
        h = HalfSpace((1.0, 1.0), 10.0)
        assert sorted(o.oid for o in loaded.query([h], [1, 2])) == sorted(
            o.oid for o in index.query([h], [1, 2])
        )

    def test_expected_class_enforced(self, rng, tmp_path):
        ds = random_dataset(rng, 20)
        index = OrpKwIndex(ds, k=2)
        path = tmp_path / "x.idx"
        save_index(index, path)
        with pytest.raises(ValidationError):
            load_index(path, expected_class=LcKwIndex)


class TestEnvelopeValidation:
    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.idx"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(ValidationError):
            load_index(path)

    def test_foreign_pickle_rejected(self, tmp_path):
        path = tmp_path / "foreign.idx"
        path.write_bytes(pickle.dumps({"something": "else"}))
        with pytest.raises(ValidationError):
            load_index(path)

    def test_wrong_format_version_rejected(self, rng, tmp_path):
        ds = random_dataset(rng, 10)
        index = OrpKwIndex(ds, k=2)
        envelope = {
            "magic": "repro-index",
            "format": FORMAT_VERSION + 1,
            "library_version": "9.9.9",
            "index_class": "OrpKwIndex",
            "index": index,
        }
        path = tmp_path / "future.idx"
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(ValidationError):
            load_index(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.idx")

"""Regression tests for bugs found (and fixed) during development.

Each test encodes the exact failure mode so it cannot silently return.
"""

import random

import pytest

import repro


class TestEmptyKeywordContract:
    """InvertedIndex.matching_objects([]) used to return the whole dataset
    while charging zero cost units — silently corrupting the RAM-model
    accounting and disagreeing with MultiKOrpIndex.query, which raises
    ValidationError.  The empty-keyword contract is now uniform: every query
    entry point raises ValidationError."""

    def _dataset(self):
        rng = random.Random(3)
        return repro.Dataset.from_points(
            [(rng.random(), rng.random()) for _ in range(40)],
            [rng.sample(range(1, 7), rng.randint(1, 3)) for _ in range(40)],
        )

    def test_inverted_index_rejects_empty(self):
        ds = self._dataset()
        index = repro.InvertedIndex(ds)
        counter = repro.CostCounter()
        with pytest.raises(repro.ValidationError):
            index.matching_objects([], counter)
        assert counter.total == 0  # nothing scanned before the rejection

    def test_baselines_reject_empty(self):
        from repro.core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex

        ds = self._dataset()
        rect = repro.Rect.full(2)
        with pytest.raises(repro.ValidationError):
            KeywordsOnlyIndex(ds).query_rect(rect, [])
        with pytest.raises(repro.ValidationError):
            StructuredOnlyIndex(ds).query_rect(rect, [])

    def test_planner_and_engine_reject_empty(self):
        ds = self._dataset()
        rect = repro.Rect.full(2)
        with pytest.raises(repro.ValidationError):
            repro.HybridPlanner(ds, k=2).query(rect, [])
        with pytest.raises(repro.ValidationError):
            repro.QueryEngine(ds, max_k=2).query(rect, [])
        with pytest.raises(repro.ValidationError):
            repro.MultiKOrpIndex(ds, max_k=2).query(rect, [])


class TestPivotMaterializedDoubleReport:
    """An object in both a node's pivot set and a materialized list used to
    be reported twice (the pivot scan ran before the small-keyword branch).
    Fixed by scanning the materialized list *instead of* the pivot set."""

    def test_duplicate_heavy_instance(self):
        rng = random.Random(11)
        points, docs = [], []
        for i in range(120):
            if rng.random() < 0.3:
                points.append((float(rng.randint(0, 5)), float(rng.randint(0, 5))))
            else:
                points.append((rng.random(), rng.random()))
            docs.append(rng.sample(range(1, 9), rng.randint(1, 4)))
        ds = repro.Dataset.from_points(points, docs)
        index = repro.OrpKwIndex(ds, k=2)
        for _ in range(40):
            a, b = sorted([rng.uniform(-1, 6), rng.uniform(-1, 6)])
            c, d = sorted([rng.uniform(-1, 6), rng.uniform(-1, 6)])
            rect = repro.Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            found = [o.oid for o in index.query(rect, words)]
            assert len(found) == len(set(found)), "object reported twice"


class TestLinfBallUlpUndershoot:
    """Rebuilding a ball as q ± |q - e| can miss the defining point e by one
    rounding ulp, sending the NN driver into an infinite budget-doubling
    loop.  Fixed by a relative-epsilon ball inflation + verified fallback.

    The dataset/query below reproduce the exact hang found in fuzzing.
    """

    def test_original_hang_instance(self):
        rng = random.Random(42)

        def make(n, vocab, docmax, d=2):
            pts, dcs = [], []
            for _ in range(n):
                pts.append(tuple(rng.uniform(0, 10) for _ in range(d)))
                dcs.append(rng.sample(range(1, vocab + 1), rng.randint(1, docmax)))
            return repro.Dataset.from_points(pts, dcs)

        # Fast-forward the RNG the way the original fuzz script did not —
        # instead, directly use coordinates near the failing configuration.
        ds = make(90, 5, 3)
        index = repro.LinfNnIndex(ds, k=2)
        q = (4.357753686060891, 1.6498381879585167)
        # Must terminate (the bug was an infinite loop, not a wrong answer).
        result = index.query(q, 4, [2, 4])
        assert len(result) <= 4

    def test_query_at_exact_coordinates(self, rng):
        """Balls anchored exactly on data coordinates exercise the ulp path."""
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(60)]
        docs = [[1, 2] for _ in range(60)]
        ds = repro.Dataset.from_points(points, docs)
        index = repro.LinfNnIndex(ds, k=2)
        for i in range(0, 60, 7):
            got = index.query(points[i], 3, [1, 2])
            assert len(got) == 3


class TestKSetChildlessNodeScan:
    """A childless node (fewer than k large keywords) used to take the leaf
    path and scan its whole element range (Θ(N_u)) instead of the
    materialized list (O(N_u^α)).  Exposed by the H3 α = 0.8 sweep."""

    def test_high_alpha_cost_stays_sublinear(self):
        from repro.costmodel import CostCounter
        from repro.ksi.cohen_porat import KSetIndex
        from repro.workloads.generators import adversarial_ksi_sets

        sets = adversarial_ksi_sets(20, 1000, planted=0, seed=8)
        index = KSetIndex(sets, k=2, threshold_exponent=0.8)
        counter = CostCounter()
        assert index.report([0, 1], counter) == []
        n = index.input_size  # 20_000
        # Before the fix this cost was N + 1; the materialized scan is ~N^0.8.
        assert counter.total <= 2 * n**0.8 + 32, counter.total


class TestLpObjectiveReduction:
    """The objective used to be substituted like a constraint, so a negative
    constant shift was mistaken for infeasibility."""

    def test_original_failing_lp(self):
        from repro.geometry.lp import solve_lp

        point = solve_lp([((-1.0, 0.0), -0.25)], (1.0, 0.0), (0.0, 0.0), (1.0, 1.0))
        assert point is not None
        assert point[0] == pytest.approx(0.25)


class TestIntervalTreeMedian:
    """The center used to be picked from two concatenated (not merged)
    sorted endpoint lists, degenerating the recursion to depth Θ(n)."""

    def test_deep_recursion_instance(self, rng):
        from repro.intervaltree import IntervalTree

        intervals = []
        for _ in range(4096):
            lo = rng.uniform(0.0, 100.0)
            intervals.append((lo, lo + 0.01))
        tree = IntervalTree(intervals)  # used to raise RecursionError

        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(tree.root) <= 32

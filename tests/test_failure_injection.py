"""Failure injection: malformed inputs and hard budgets across the library.

Every index must reject malformed data loudly (never garble silently), and
every query path must propagate :class:`BudgetExceeded` rather than swallow
it (the NN drivers depend on that contract).
"""

import math

import pytest

from repro import (
    BudgetExceeded,
    CostCounter,
    Dataset,
    HalfSpace,
    LcKwIndex,
    OrpKwIndex,
    Rect,
    SrpKwIndex,
    ValidationError,
)
from repro.dataset import KeywordObject, make_objects
from repro.ksi.cohen_porat import KSetIndex

from helpers import random_dataset


class TestNonFiniteInputs:
    def test_nan_coordinates_rejected(self):
        with pytest.raises(ValidationError):
            make_objects([(float("nan"), 1.0)], [[1]])

    def test_inf_coordinates_rejected(self):
        with pytest.raises(ValidationError):
            make_objects([(math.inf, 1.0)], [[1]])

    def test_nan_query_rect_rejected(self):
        with pytest.raises(ValidationError):
            Rect((float("nan"),), (1.0,))

    def test_inf_query_rect_allowed(self):
        # Unbounded query rectangles are legitimate (q = R^d in §1.2).
        rect = Rect.full(2)
        assert rect.contains_point((1e300, -1e300))

    def test_nan_halfspace_rejected(self):
        with pytest.raises(ValidationError):
            HalfSpace((float("nan"), 1.0), 0.0)
        with pytest.raises(ValidationError):
            HalfSpace((1.0,), float("nan"))

    def test_inf_halfspace_coefficient_rejected(self):
        with pytest.raises(ValidationError):
            HalfSpace((math.inf, 1.0), 0.0)


class TestBudgetPropagation:
    """A budget of ~zero must abort every index's query path."""

    def test_orp(self, rng):
        index = OrpKwIndex(random_dataset(rng, 200), k=2)
        with pytest.raises(BudgetExceeded):
            index.query(Rect.full(2), [1, 2], counter=CostCounter(budget=2))

    def test_lc(self, rng):
        index = LcKwIndex(random_dataset(rng, 200), k=2)
        with pytest.raises(BudgetExceeded):
            index.query(
                [HalfSpace((1.0, 1.0), 15.0)],
                [1, 2],
                counter=CostCounter(budget=2),
            )

    def test_srp(self, rng):
        index = SrpKwIndex(random_dataset(rng, 200), k=2)
        with pytest.raises(BudgetExceeded):
            index.query((5.0, 5.0), 4.0, [1, 2], counter=CostCounter(budget=2))

    def test_kset(self, rng):
        sets = [[e for e in range(50)] for _ in range(4)]
        index = KSetIndex(sets, k=2)
        with pytest.raises(BudgetExceeded):
            index.report([0, 1], counter=CostCounter(budget=2))

    def test_budget_not_triggered_when_large_enough(self, rng):
        index = OrpKwIndex(random_dataset(rng, 50), k=2)
        counter = CostCounter(budget=10**9)
        index.query(Rect.full(2), [1, 2], counter=counter)  # must not raise


class TestDegenerateDatasets:
    def test_single_object_all_indexes(self):
        ds = Dataset.from_points([(1.0, 2.0)], [{1, 2, 3}])
        orp = OrpKwIndex(ds, k=2)
        assert [o.oid for o in orp.query(Rect.full(2), [1, 2])] == [0]
        assert orp.query(Rect.full(2), [1, 9]) == []
        lc = LcKwIndex(ds, k=2)
        assert [o.oid for o in lc.query([HalfSpace((1.0, 0.0), 5.0)], [1, 2])] == [0]

    def test_all_objects_identical(self):
        ds = Dataset.from_points([(3.0, 3.0)] * 20, [[1, 2]] * 20)
        orp = OrpKwIndex(ds, k=2)
        found = orp.query(Rect((3.0, 3.0), (3.0, 3.0)), [1, 2])
        assert len(found) == 20

    def test_single_keyword_vocabulary(self):
        ds = Dataset.from_points([(float(i), 0.5) for i in range(10)], [[7]] * 10)
        orp = OrpKwIndex(ds, k=2)
        # k=2 queries need 2 distinct keywords; one of them cannot exist.
        assert orp.query(Rect.full(2), [7, 8]) == []

    def test_huge_document_object(self, rng):
        """One object carrying half the input mass must not break balance."""
        objs = [KeywordObject(oid=0, point=(0.5, 0.5), doc=frozenset(range(1, 101)))]
        for i in range(1, 40):
            objs.append(
                KeywordObject(
                    oid=i,
                    point=(rng.random() * 10, rng.random() * 10),
                    doc=frozenset(rng.sample(range(1, 8), 2)),
                )
            )
        ds = Dataset(objs)
        orp = OrpKwIndex(ds, k=2)
        got = sorted(o.oid for o in orp.query(Rect.full(2), [1, 2]))
        want = sorted(o.oid for o in ds.matching([1, 2]))
        assert got == want

    def test_extreme_coordinate_magnitudes(self):
        ds = Dataset.from_points(
            [(1e-12, 1e12), (2e-12, 2e12), (1e12, 1e-12)],
            [[1, 2], [1, 2], [1, 2]],
        )
        orp = OrpKwIndex(ds, k=2)
        found = orp.query(Rect((0.0, 0.0), (1e13, 1e13)), [1, 2])
        assert len(found) == 3

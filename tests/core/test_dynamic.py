"""Unit tests for repro.core.dynamic (logarithmic-method dynamization)."""

import pytest

from repro.core.dynamic import DynamicOrpKw
from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect


def brute(reference, rect, words):
    return sorted(
        oid
        for oid, (point, doc) in reference.items()
        if rect.contains_point(point) and set(words) <= doc
    )


class TestInsertions:
    def test_insert_then_query(self):
        index = DynamicOrpKw(k=2, dim=2)
        oid = index.insert((1.0, 2.0), {1, 2})
        found = index.query(Rect((0.0, 0.0), (3.0, 3.0)), [1, 2])
        assert [o.oid for o in found] == [oid]

    def test_bucket_sizes_respect_doubling(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        for _ in range(100):
            index.insert((rng.random(), rng.random()), {rng.randint(1, 5), 7})
        for level, size in enumerate(index.bucket_sizes):
            assert size <= 2**level

    def test_interleaved_inserts_and_queries(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        reference = {}
        for step in range(150):
            point = (rng.uniform(0, 10), rng.uniform(0, 10))
            doc = frozenset(rng.sample(range(1, 7), rng.randint(1, 3)))
            oid = index.insert(point, doc)
            reference[oid] = (point, doc)
            if step % 25 == 0:
                a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
                c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
                rect = Rect((a, c), (b, d))
                words = rng.sample(range(1, 7), 2)
                got = sorted(o.oid for o in index.query(rect, words))
                assert got == brute(reference, rect, words)

    def test_insert_many_matches_singles(self, rng):
        batch = DynamicOrpKw(k=2, dim=2)
        single = DynamicOrpKw(k=2, dim=2)
        points = [(rng.random(), rng.random()) for _ in range(50)]
        docs = [frozenset(rng.sample(range(1, 6), 2)) for _ in range(50)]
        batch.insert_many(points, docs)
        for point, doc in zip(points, docs):
            single.insert(point, doc)
        rect = Rect((0.2, 0.2), (0.8, 0.8))
        a = sorted(o.oid for o in batch.query(rect, [1, 2]))
        b = sorted(o.oid for o in single.query(rect, [1, 2]))
        assert a == b

    def test_no_duplicates_across_buckets(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        for _ in range(80):
            index.insert((rng.random(), rng.random()), {1, 2})
        found = [o.oid for o in index.query(Rect.full(2), [1, 2])]
        assert len(found) == len(set(found)) == 80


class TestDeletions:
    def test_delete_removes_from_answers(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((rng.random(), rng.random()), {1, 2}) for _ in range(20)]
        index.delete(oids[5])
        found = {o.oid for o in index.query(Rect.full(2), [1, 2])}
        assert oids[5] not in found
        assert len(found) == 19

    def test_len_tracks_live_objects(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((rng.random(), rng.random()), {1, 2}) for _ in range(10)]
        assert len(index) == 10
        index.delete(oids[0])
        assert len(index) == 9

    def test_double_delete_rejected(self):
        index = DynamicOrpKw(k=2, dim=2)
        oid = index.insert((0.0, 0.0), {1, 2})
        # Inserting more keeps the structure from rebuilding immediately.
        index.insert((1.0, 1.0), {1, 2})
        index.insert((2.0, 2.0), {1, 2})
        index.delete(oid)
        with pytest.raises(ValidationError):
            index.delete(oid)

    def test_unknown_delete_rejected(self):
        index = DynamicOrpKw(k=2, dim=2)
        index.insert((0.0, 0.0), {1})
        with pytest.raises(ValidationError):
            index.delete(999)

    def test_rebuild_purges_tombstones(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((rng.random(), rng.random()), {1, 2}) for _ in range(32)]
        for oid in oids[:16]:
            index.delete(oid)  # triggers the half-dead rebuild
        assert len(index) == 16
        assert sum(index.bucket_sizes) == 16  # physically removed

    def test_churn_consistency(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        reference = {}
        for step in range(250):
            if reference and rng.random() < 0.35:
                oid = rng.choice(sorted(reference))
                index.delete(oid)
                del reference[oid]
            else:
                point = (rng.uniform(0, 10), rng.uniform(0, 10))
                doc = frozenset(rng.sample(range(1, 7), rng.randint(1, 3)))
                oid = index.insert(point, doc)
                reference[oid] = (point, doc)
            if step % 40 == 0:
                rect = Rect((2.0, 2.0), (8.0, 8.0))
                words = rng.sample(range(1, 7), 2)
                got = sorted(o.oid for o in index.query(rect, words))
                assert got == brute(reference, rect, words)


class TestLiveSpaceAccounting:
    def test_delete_then_measure_space_shrinks(self, rng):
        """Regression: space accounting must track the *live* set.  Before
        the fix, tombstoned objects kept their stored entries counted until
        the half-dead rebuild, so space drifted upward under delete-heavy
        churn even as the live set shrank."""
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((rng.random(), rng.random()), {1, 2}) for _ in range(32)]
        space_before = index.space_units
        # Stay under the 50%-dead rebuild threshold: tombstones only.
        for oid in oids[:5]:
            index.delete(oid)
        assert sum(index.bucket_sizes) == len(index) == 27
        space_after = index.space_units
        assert space_after < space_before
        # Each further delete shrinks the reported space monotonically.
        index.delete(oids[5])
        assert index.space_units < space_after

    def test_bucket_sizes_exclude_tombstones(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((rng.random(), rng.random()), {1, 2}) for _ in range(16)]
        assert sum(index.bucket_sizes) == 16
        for oid in oids[:3]:
            index.delete(oid)
        assert sum(index.bucket_sizes) == 13
        # Doubling caps still hold for live counts (live <= physical).
        for level, size in enumerate(index.bucket_sizes):
            assert size <= 2**level

    def test_rebuild_restores_physical_space(self, rng):
        """After the half-dead rebuild purges tombstones, live space and
        physical space coincide with a fresh index over the survivors."""
        index = DynamicOrpKw(k=2, dim=2)
        points = [(rng.random(), rng.random()) for _ in range(32)]
        oids = [index.insert(p, {1, 2}) for p in points]
        for oid in oids[:16]:
            index.delete(oid)  # triggers the rebuild
        fresh = DynamicOrpKw(k=2, dim=2)
        fresh.insert_many(points[16:], [{1, 2}] * 16)
        assert index.space_units == fresh.space_units


class TestDeleteFailureAtomicity:
    def test_double_delete_leaves_no_side_effects(self):
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((float(i), float(i)), {1, 2}) for i in range(8)]
        index.delete(oids[0])
        epoch_before = index.epoch
        with pytest.raises(ValidationError):
            index.delete(oids[0])
        # The failing path published nothing: the epoch object is untouched
        # (same identity, same id), tombstones and live count unchanged.
        assert index.epoch is epoch_before
        assert index.epoch.tombstones == frozenset({oids[0]})
        assert len(index) == 7

    def test_unknown_delete_leaves_no_side_effects(self):
        index = DynamicOrpKw(k=2, dim=2)
        index.insert((0.0, 0.0), {1, 2})
        epoch_before = index.epoch
        with pytest.raises(ValidationError):
            index.delete(999)
        assert index.epoch is epoch_before
        assert index.epoch.tombstones == frozenset()
        assert len(index) == 1

    def test_failed_delete_never_triggers_rebuild(self):
        """A rejected delete one short of the rebuild threshold must not
        tip the structure into a rebuild."""
        index = DynamicOrpKw(k=2, dim=2)
        oids = [index.insert((float(i), 0.5), {1, 2}) for i in range(4)]
        index.delete(oids[0])  # 1 of 4 dead; one more would rebuild
        epoch_before = index.epoch
        with pytest.raises(ValidationError):
            index.delete(oids[0])
        assert index.epoch is epoch_before


class TestEpochSnapshots:
    def test_pinned_epoch_unaffected_by_later_writes(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        first = index.insert_many(
            [(rng.random(), rng.random()) for _ in range(10)], [{1, 2}] * 10
        )
        pinned = index.snapshot()
        index.insert_many(
            [(rng.random(), rng.random()) for _ in range(20)], [{1, 2}] * 20
        )
        index.delete(first[0])
        got = sorted(o.oid for o in pinned.query(Rect.full(2), [1, 2]))
        assert got == sorted(first)  # the pin still answers pre-write state
        assert pinned.live_oids() == frozenset(first)

    def test_each_mutation_publishes_exactly_one_epoch(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        assert index.epoch.epoch_id == 0
        index.insert((0.1, 0.1), {1, 2})
        assert index.epoch.epoch_id == 1
        index.insert_many([(0.2, 0.2), (0.3, 0.3)], [{1, 2}, {1, 2}])
        assert index.epoch.epoch_id == 2  # the whole batch is one epoch
        index.delete(0)
        assert index.epoch.epoch_id == 3  # tombstone-or-rebuild, still one

    def test_empty_insert_many_publishes_nothing(self):
        index = DynamicOrpKw(k=2, dim=2)
        assert index.insert_many([], []) == []
        assert index.epoch.epoch_id == 0


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValidationError):
            DynamicOrpKw(k=1, dim=2)
        with pytest.raises(ValidationError):
            DynamicOrpKw(k=2, dim=0)

    def test_dim_mismatch(self):
        index = DynamicOrpKw(k=2, dim=2)
        with pytest.raises(ValidationError):
            index.insert((1.0,), {1})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_insert_rejected_atomically(self, bad):
        """NaN/inf coordinates are rejected before any state mutation: no
        object id is burned and the structure is untouched (regression for
        the PR-1 insert path, which validated only after incrementing the
        id counter)."""
        index = DynamicOrpKw(k=2, dim=2)
        with pytest.raises(ValidationError):
            index.insert((bad, 1.0), {1})
        with pytest.raises(ValidationError):
            index.insert((1.0, bad), {1})
        assert len(index) == 0
        # The next good insert gets the first id — nothing was burned.
        assert index.insert((0.0, 0.0), {1, 2}) == 0

    def test_insert_many_atomic_on_bad_point(self):
        index = DynamicOrpKw(k=2, dim=2)
        with pytest.raises(ValidationError):
            index.insert_many(
                [(0.0, 0.0), (float("nan"), 1.0), (2.0, 2.0)],
                [{1}, {2}, {3}],
            )
        assert len(index) == 0
        assert index.bucket_sizes == ()

    def test_counter_charged(self, rng):
        index = DynamicOrpKw(k=2, dim=2)
        for _ in range(30):
            index.insert((rng.random(), rng.random()), {1, 2})
        counter = CostCounter()
        index.query(Rect.full(2), [1, 2], counter=counter)
        assert counter.total > 0

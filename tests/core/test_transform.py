"""Unit tests for repro.core.transform (the §3 framework)."""

import math

import pytest

from repro.core.transform import KeywordTransform, QueryStats, verbose_points
from repro.costmodel import CostCounter
from repro.dataset import Dataset, make_objects
from repro.errors import BudgetExceeded
from repro.geometry.rectangles import Rect
from repro.geometry.regions import EverythingRegion, RectRegion
from repro.kdtree import KdTree

from helpers import random_dataset


def build_transform(dataset, k=2):
    points = verbose_points(dataset.objects)
    lo = tuple(min(p[i] for p in points) - 1.0 for i in range(dataset.dim))
    hi = tuple(max(p[i] for p in points) + 1.0 for i in range(dataset.dim))
    tree = KdTree(points, leaf_size=1, root_cell=Rect(lo, hi))
    return KeywordTransform(dataset.objects, tree, k)


class TestVerbosePoints:
    def test_each_object_replicated_doc_times(self, tiny_dataset):
        points = verbose_points(tiny_dataset.objects)
        assert len(points) == tiny_dataset.total_doc_size
        assert points.count((1.0, 1.0)) == 2
        assert points.count((8.0, 8.0)) == 3


class TestStructuralInvariants:
    def test_every_object_in_exactly_one_pivot_or_materialized_cover(self, rng):
        """Each object appears in exactly one pivot set."""
        ds = random_dataset(rng, 50)
        transform = build_transform(ds)
        seen = {}
        stack = [transform.root]
        while stack:
            node = stack.pop()
            for obj in node.pivot:
                seen[obj.oid] = seen.get(obj.oid, 0) + 1
            stack.extend(node.children)
        # Terminal nodes with materialized lists "own" their non-pivot
        # objects implicitly; pivot ownership must still be unique.
        assert all(count == 1 for count in seen.values())

    def test_materialized_pair_appears_once(self, rng):
        """Each (object, keyword) pair is in at most one materialized list."""
        ds = random_dataset(rng, 60)
        transform = build_transform(ds)
        seen = set()
        stack = [transform.root]
        while stack:
            node = stack.pop()
            for word, members in node.materialized.items():
                for obj in members:
                    key = (obj.oid, word)
                    assert key not in seen, key
                    seen.add(key)
            stack.extend(node.children)

    def test_weights_decrease_down_the_tree(self, rng):
        ds = random_dataset(rng, 60)
        transform = build_transform(ds)
        stack = [transform.root]
        while stack:
            node = stack.pop()
            for child in node.children:
                assert child.weight <= node.weight
                stack.append(child)

    def test_large_set_bounded_by_weight_pow(self, rng):
        ds = random_dataset(rng, 80, vocabulary=20)
        transform = build_transform(ds, k=2)
        stack = [transform.root]
        while stack:
            node = stack.pop()
            if node.weight > 0:
                assert len(node.large) <= math.sqrt(node.weight) + 1
            stack.extend(node.children)

    def test_children_only_when_k_large_keywords(self, rng):
        ds = random_dataset(rng, 60)
        transform = build_transform(ds, k=2)
        stack = [transform.root]
        while stack:
            node = stack.pop()
            if node.children:
                assert len(node.large) >= 2
            stack.extend(node.children)

    def test_space_linear(self, rng):
        ds = random_dataset(rng, 300, vocabulary=30)
        transform = build_transform(ds)
        assert transform.space_units <= 12 * transform.input_size

    def test_pivot_sets_constant_in_rank_space(self, rng):
        """With distinct coordinates every internal pivot set is O(1)."""
        # Build on distinct-coordinate data directly (rank-space surrogate).
        points = [(float(i), float((i * 7) % 101)) for i in range(80)]
        docs = [rng.sample(range(1, 9), rng.randint(1, 3)) for _ in range(80)]
        ds = Dataset(make_objects(points, docs))
        transform = build_transform(ds)
        assert transform.max_pivot_size() <= 4


class TestQueries:
    def test_everything_query_returns_all_matching(self, rng):
        ds = random_dataset(rng, 70)
        transform = build_transform(ds)
        for _ in range(10):
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in transform.query(EverythingRegion(2), words))
            want = sorted(o.oid for o in ds.matching(words))
            assert got == want

    def test_rect_query_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 90)
        transform = build_transform(ds)
        for _ in range(20):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in transform.query(RectRegion(rect), words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_no_duplicates_reported(self, rng):
        ds = random_dataset(rng, 80)
        transform = build_transform(ds)
        for _ in range(10):
            words = rng.sample(range(1, 9), 2)
            found = [o.oid for o in transform.query(EverythingRegion(2), words)]
            assert len(found) == len(set(found))

    def test_unknown_keyword_empty(self, rng):
        ds = random_dataset(rng, 30)
        transform = build_transform(ds)
        assert transform.query(EverythingRegion(2), [99, 100]) == []

    def test_max_report_truncates(self, rng):
        ds = random_dataset(rng, 80)
        transform = build_transform(ds)
        words = rng.sample(range(1, 9), 2)
        full = transform.query(EverythingRegion(2), words)
        if len(full) >= 2:
            partial = transform.query(EverythingRegion(2), words, max_report=2)
            assert len(partial) == 2

    def test_budget_enforced(self, rng):
        ds = random_dataset(rng, 200)
        transform = build_transform(ds)
        counter = CostCounter(budget=3)
        with pytest.raises(BudgetExceeded):
            transform.query(EverythingRegion(2), [1, 2], counter=counter)

    def test_stats_collected(self, rng):
        ds = random_dataset(rng, 100)
        transform = build_transform(ds)
        stats = QueryStats()
        transform.query(
            RectRegion(Rect((1.0, 1.0), (8.0, 8.0))), [1, 2], stats=stats
        )
        assert stats.covered_nodes + stats.crossing_nodes == len(stats.visited_levels)


class TestThresholdAblation:
    def test_extreme_threshold_still_correct(self, rng):
        """Correctness must hold for any threshold (it only shifts cost)."""
        ds = random_dataset(rng, 60)
        points = verbose_points(ds.objects)
        tree = KdTree(points, leaf_size=1)
        for scale in (0.25, 4.0):
            transform = KeywordTransform(ds.objects, tree, 2, threshold_scale=scale)
            for _ in range(8):
                words = rng.sample(range(1, 9), 2)
                got = sorted(o.oid for o in transform.query(EverythingRegion(2), words))
                want = sorted(o.oid for o in ds.matching(words))
                assert got == want

"""Unit tests for repro.core.dim_reduction (Theorem 2 / §4)."""

import math

import pytest

from repro.core.dim_reduction import DimReductionOrpKw, DrStats
from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect

from helpers import random_dataset


def random_rect_3d(rng, lo=-1.0, hi=11.0):
    ivs = [sorted([rng.uniform(lo, hi), rng.uniform(lo, hi)]) for _ in range(3)]
    return Rect([iv[0] for iv in ivs], [iv[1] for iv in ivs])


class TestCorrectness:
    def test_agrees_with_brute_force_3d(self, rng):
        ds = random_dataset(rng, 100, dim=3)
        for k in (2, 3):
            index = DimReductionOrpKw(ds, k=k)
            for _ in range(12):
                rect = random_rect_3d(rng)
                words = rng.sample(range(1, 9), k)
                got = sorted(o.oid for o in index.query(rect, words))
                want = sorted(
                    o.oid
                    for o in ds
                    if rect.contains_point(o.point) and o.contains_keywords(words)
                )
                assert got == want

    def test_4d_recursion(self, rng):
        ds = random_dataset(rng, 60, dim=4)
        index = DimReductionOrpKw(ds, k=2)
        for _ in range(8):
            ivs = [sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)]) for _ in range(4)]
            rect = Rect([iv[0] for iv in ivs], [iv[1] for iv in ivs])
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_full_space_query(self, rng):
        ds = random_dataset(rng, 80, dim=3)
        index = DimReductionOrpKw(ds, k=2)
        words = rng.sample(range(1, 9), 2)
        got = sorted(o.oid for o in index.query(Rect.full(3), words))
        want = sorted(o.oid for o in ds.matching(words))
        assert got == want

    def test_x_slab_queries_exercise_type2_nodes(self, rng):
        ds = random_dataset(rng, 120, dim=3)
        index = DimReductionOrpKw(ds, k=2)
        for _ in range(10):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, -1.0, -1.0), (b, 11.0, 11.0))
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_max_report(self, rng):
        ds = random_dataset(rng, 80, dim=3)
        index = DimReductionOrpKw(ds, k=2)
        words = rng.sample(range(1, 9), 2)
        full = index.query(Rect.full(3), words)
        if len(full) >= 3:
            partial = index.query(Rect.full(3), words, max_report=3)
            assert len(partial) == 3


class TestValidation:
    def test_rejects_low_dimensions(self, rng):
        ds = random_dataset(rng, 20, dim=2)
        with pytest.raises(ValidationError):
            DimReductionOrpKw(ds, k=2)

    def test_rejects_bad_k(self, rng):
        ds = random_dataset(rng, 20, dim=3)
        with pytest.raises(ValidationError):
            DimReductionOrpKw(ds, k=1)

    def test_rejects_query_dim_mismatch(self, rng):
        ds = random_dataset(rng, 20, dim=3)
        index = DimReductionOrpKw(ds, k=2)
        with pytest.raises(ValidationError):
            index.query(Rect.full(2), [1, 2])


class TestStructure:
    def test_height_loglog(self, rng):
        """Proposition 1: the balanced-cut tree has O(log log N) levels."""
        ds = random_dataset(rng, 800, dim=3, vocabulary=30)
        index = DimReductionOrpKw(ds, k=2)
        n = index.input_size
        assert index.height() <= math.log2(math.log2(n)) + 3

    def test_fanout_bounded(self, rng):
        """Proposition 3: every fanout is O(N^(1-1/k))."""
        ds = random_dataset(rng, 700, dim=3, vocabulary=30)
        index = DimReductionOrpKw(ds, k=2)
        assert index.max_fanout() <= 8 * index.input_size ** 0.5 + 8

    def test_type2_nodes_at_most_two_per_level(self, rng):
        """Figure 2: each level has at most two type-2 nodes."""
        ds = random_dataset(rng, 400, dim=3, vocabulary=20)
        index = DimReductionOrpKw(ds, k=2)
        for _ in range(10):
            stats = DrStats()
            rect = random_rect_3d(rng, lo=0.5, hi=9.5)
            index.query(rect, rng.sample(range(1, 9), 2), stats=stats)
            for level, count in stats.type2_per_level.items():
                assert count <= 2, (level, count)

    def test_space_within_loglog_factor(self, rng):
        ds = random_dataset(rng, 600, dim=3, vocabulary=30)
        index = DimReductionOrpKw(ds, k=2)
        n = index.input_size
        # O(N loglog N) with a generous constant.
        assert index.space_units <= 40 * n * max(math.log2(math.log2(n)), 1)

    def test_counter_charged(self, rng):
        ds = random_dataset(rng, 100, dim=3)
        index = DimReductionOrpKw(ds, k=2)
        counter = CostCounter()
        index.query(random_rect_3d(rng), rng.sample(range(1, 9), 2), counter=counter)
        assert counter.total > 0

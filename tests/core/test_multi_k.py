"""Unit tests for repro.core.multi_k."""

import pytest

from repro.core.multi_k import MultiKOrpIndex
from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect

from helpers import random_dataset


class TestRouting:
    def test_all_ks_agree_with_brute_force(self, rng):
        ds = random_dataset(rng, 100)
        index = MultiKOrpIndex(ds, max_k=4)
        for k in (1, 2, 3, 4):
            for _ in range(8):
                a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
                c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
                rect = Rect((a, c), (b, d))
                words = rng.sample(range(1, 9), k)
                got = sorted(o.oid for o in index.query(rect, words))
                want = sorted(
                    o.oid
                    for o in ds
                    if rect.contains_point(o.point) and o.contains_keywords(words)
                )
                assert got == want, (k, got, want)

    def test_duplicate_keywords_deduped(self, rng):
        ds = random_dataset(rng, 60)
        index = MultiKOrpIndex(ds, max_k=3)
        rect = Rect.full(2)
        a = sorted(o.oid for o in index.query(rect, [1, 2]))
        b = sorted(o.oid for o in index.query(rect, [1, 2, 1]))
        assert a == b

    def test_too_many_keywords_rejected(self, rng):
        ds = random_dataset(rng, 30)
        index = MultiKOrpIndex(ds, max_k=2)
        with pytest.raises(ValidationError):
            index.query(Rect.full(2), [1, 2, 3])

    def test_no_keywords_rejected(self, rng):
        ds = random_dataset(rng, 30)
        index = MultiKOrpIndex(ds, max_k=2)
        with pytest.raises(ValidationError):
            index.query(Rect.full(2), [])

    def test_bad_max_k_rejected(self, rng):
        ds = random_dataset(rng, 30)
        with pytest.raises(ValidationError):
            MultiKOrpIndex(ds, max_k=0)

    def test_k1_uses_posting_list(self, rng):
        ds = random_dataset(rng, 100, vocabulary=10)
        index = MultiKOrpIndex(ds, max_k=2)
        counter = CostCounter()
        out = index.query(Rect.full(2), [3], counter=counter)
        # Cost ~ posting list length, not N.
        posting = len(ds.objects_with(3))
        assert len(out) == posting
        assert counter["objects_examined"] == posting

    def test_k1_charges_containment_comparisons(self, rng):
        """Regression: the k=1 route filtered candidates with
        rect.contains_point without charging `comparisons`, under-counting
        exactly the quantity the Table-1 benchmarks measure."""
        ds = random_dataset(rng, 100, vocabulary=10)
        index = MultiKOrpIndex(ds, max_k=2)
        counter = CostCounter()
        rect = Rect((2.0, 2.0), (7.0, 7.0))
        index.query(rect, [3], counter=counter)
        posting = len(ds.objects_with(3))
        # One containment test per posting-list candidate.
        assert counter["comparisons"] == posting
        assert counter["objects_examined"] == posting
        assert counter.total == 2 * posting

    def test_component_accessors(self, rng):
        ds = random_dataset(rng, 60)
        index = MultiKOrpIndex(ds, max_k=3)
        assert index.inverted.frequency(1) == len(ds.objects_with(1))
        assert index.fused_for(2).k == 2
        with pytest.raises(ValidationError):
            index.fused_for(5)
        with pytest.raises(ValidationError):
            index.fused_for(1)

    def test_space_scales_with_max_k(self, rng):
        ds = random_dataset(rng, 150)
        small = MultiKOrpIndex(ds, max_k=2)
        large = MultiKOrpIndex(ds, max_k=4)
        assert large.space_units > small.space_units
        assert large.space_units <= 8 * large.input_size * 4

"""Tests for the query-explain facility (QueryStats breakdown)."""

from repro.core.orp_kw import OrpKwIndex
from repro.core.transform import QueryStats
from repro.geometry.rectangles import Rect

from helpers import random_dataset


class TestExplain:
    def test_explain_returns_stats(self, rng):
        ds = random_dataset(rng, 120)
        index = OrpKwIndex(ds, k=2)
        stats = index.explain(Rect((2.0, 2.0), (8.0, 8.0)), [1, 2])
        assert isinstance(stats, QueryStats)
        assert stats.covered_nodes + stats.crossing_nodes == len(stats.visited_levels)

    def test_describe_is_readable(self, rng):
        ds = random_dataset(rng, 120)
        index = OrpKwIndex(ds, k=2)
        text = index.explain(Rect((2.0, 2.0), (8.0, 8.0)), [1, 2]).describe()
        assert "visited nodes" in text
        assert "materialized scans" in text
        assert "Lemma 10" in text

    def test_per_level_counts_sum_to_visits(self, rng):
        ds = random_dataset(rng, 150)
        index = OrpKwIndex(ds, k=2)
        stats = index.explain(Rect.full(2), [1, 2])
        histogram = stats.per_level_counts()
        assert sum(histogram.values()) == len(stats.visited_levels)

    def test_materialized_branch_recorded(self, rng):
        """A rare keyword goes small near the root -> materialized scan."""
        from repro.dataset import Dataset

        points = [(rng.random() * 10, rng.random() * 10) for _ in range(120)]
        docs = [[1, 2] for _ in range(119)] + [[1, 3]]  # keyword 3 is rare
        ds = Dataset.from_points(points, docs)
        index = OrpKwIndex(ds, k=2)
        stats = index.explain(Rect.full(2), [1, 3])
        assert stats.materialized_scans >= 1
        assert stats.materialized_objects >= 1

    def test_combo_rejections_on_disjoint_keywords(self, rng):
        from repro.dataset import Dataset

        points = [(rng.random() * 10, rng.random() * 10) for _ in range(200)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(200)]
        ds = Dataset.from_points(points, docs)
        index = OrpKwIndex(ds, k=2)
        stats = index.explain(Rect.full(2), [1, 2])
        # Both large at the root, but no child combination is non-empty.
        assert stats.combo_rejections >= 1
        assert stats.materialized_scans == 0

    def test_cell_rejections_on_selective_rect(self, rng):
        from repro.dataset import Dataset

        points = [(i / 200 * 10, (i * 7 % 200) / 200 * 10) for i in range(200)]
        docs = [[1, 2] for _ in range(200)]
        ds = Dataset.from_points(points, docs)
        index = OrpKwIndex(ds, k=2)
        stats = index.explain(Rect((4.9, 4.9), (5.1, 5.1)), [1, 2])
        assert stats.cell_rejections >= 1

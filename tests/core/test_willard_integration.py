"""Integration of the Willard partition scheme with the full keyword stack.

The Willard scheme is the provable-crossing alternative substrate (see
DESIGN.md); these tests exercise it through every layer that accepts a
scheme: SP-KW, LC-KW, SRP-KW (which lifts to 3-D, where Willard does not
apply and must be rejected cleanly), and the transform's statistics.
"""

import pytest

from repro.core.lc_kw import LcKwIndex, SpKwIndex
from repro.core.transform import QueryStats
from repro.errors import GeometryError, ValidationError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.simplex import Simplex
from repro.partitiontree import WillardScheme

from helpers import duplicate_heavy_dataset, random_dataset


class TestWillardLcKw:
    def test_multi_constraint_queries(self, rng):
        ds = random_dataset(rng, 100)
        index = LcKwIndex(ds, k=2, scheme=WillardScheme())
        for _ in range(12):
            cons = [
                HalfSpace(
                    (rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(-5, 15)
                )
                for _ in range(rng.randint(1, 3))
            ]
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(cons, words))
            want = sorted(
                o.oid
                for o in ds
                if all(h.contains(o.point) for h in cons)
                and o.contains_keywords(words)
            )
            assert got == want

    def test_degenerate_positions(self, rng):
        ds = duplicate_heavy_dataset(rng, 80)
        index = LcKwIndex(ds, k=2, scheme=WillardScheme())
        for _ in range(10):
            cons = [
                HalfSpace(
                    (rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(-3, 8)
                )
            ]
            words = rng.sample(range(1, 7), 2)
            got = sorted(o.oid for o in index.query(cons, words))
            want = sorted(
                o.oid
                for o in ds
                if cons[0].contains(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_k3_willard(self, rng):
        ds = random_dataset(rng, 80, vocabulary=6, doc_max=5)
        index = SpKwIndex(ds, k=3, scheme=WillardScheme())
        simplex = Simplex([(-1.0, -1.0), (22.0, -1.0), (-1.0, 22.0)])
        words = rng.sample(range(1, 7), 3)
        got = sorted(o.oid for o in index.query_simplex(simplex, words))
        want = sorted(
            o.oid
            for o in ds
            if simplex.contains(o.point) and o.contains_keywords(words)
        )
        assert got == want

    def test_stats_through_willard(self, rng):
        ds = random_dataset(rng, 120)
        index = SpKwIndex(ds, k=2, scheme=WillardScheme())
        stats = QueryStats()
        simplex = Simplex([(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)])
        index.query_simplex(simplex, [1, 2], stats=stats)
        assert stats.covered_nodes + stats.crossing_nodes == len(stats.visited_levels)

    def test_willard_rejected_in_3d(self, rng):
        ds = random_dataset(rng, 30, dim=3)
        with pytest.raises((ValidationError, GeometryError)):
            SpKwIndex(ds, k=2, scheme=WillardScheme())

    def test_space_linear_willard(self, rng):
        ds = random_dataset(rng, 400, vocabulary=24)
        index = SpKwIndex(ds, k=2, scheme=WillardScheme())
        assert index.space_units <= 12 * index.input_size

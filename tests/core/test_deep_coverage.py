"""Deep coverage: higher k, cross-dimension combinations, stats plumbing."""

import pytest

from repro.core.lc_kw import SpKwIndex
from repro.core.orp_kw import OrpKwIndex
from repro.core.srp_kw import SrpKwIndex
from repro.core.transform import QueryStats
from repro.geometry.rectangles import Rect
from repro.geometry.simplex import Simplex

from helpers import random_dataset


class TestHigherK:
    @pytest.mark.parametrize("k", [3, 4])
    def test_orp_kw(self, rng, k):
        ds = random_dataset(rng, 120, vocabulary=6, doc_max=5)
        index = OrpKwIndex(ds, k=k)
        for _ in range(10):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 7), k)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    @pytest.mark.parametrize("k", [3, 4])
    def test_srp_kw(self, rng, k):
        ds = random_dataset(rng, 90, vocabulary=6, doc_max=5)
        index = SrpKwIndex(ds, k=k)
        for _ in range(8):
            center = (rng.uniform(0, 10), rng.uniform(0, 10))
            radius = rng.uniform(1.0, 6.0)
            words = rng.sample(range(1, 7), k)
            got = sorted(o.oid for o in index.query(center, radius, words))
            want = sorted(
                o.oid
                for o in ds
                if sum((x - y) ** 2 for x, y in zip(o.point, center)) <= radius**2
                and o.contains_keywords(words)
            )
            assert got == want

    def test_dim_reduction_k3_4d(self, rng):
        from repro.core.dim_reduction import DimReductionOrpKw

        ds = random_dataset(rng, 60, dim=4, vocabulary=6, doc_max=5)
        index = DimReductionOrpKw(ds, k=3)
        for _ in range(6):
            ivs = [
                sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)]) for _ in range(4)
            ]
            rect = Rect([iv[0] for iv in ivs], [iv[1] for iv in ivs])
            words = rng.sample(range(1, 7), 3)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_kset_k4(self, rng):
        from repro.ksi.cohen_porat import KSetIndex
        from repro.ksi.naive import NaiveKSI

        sets = [
            [e for e in range(50) if rng.random() < 0.5] or [0] for _ in range(6)
        ]
        index = KSetIndex(sets, k=4)
        naive = NaiveKSI(sets)
        for _ in range(15):
            ids = rng.sample(range(6), 4)
            assert index.report(ids) == naive.report(ids)


class TestSpKwStats:
    def test_stats_through_simplex_queries(self, rng):
        ds = random_dataset(rng, 150)
        index = SpKwIndex(ds, k=2)
        stats = QueryStats()
        simplex = Simplex([(0.0, 0.0), (12.0, 0.0), (0.0, 12.0)])
        index.query_simplex(simplex, [1, 2], stats=stats)
        assert len(stats.visited_levels) >= 1
        assert stats.covered_nodes + stats.crossing_nodes == len(stats.visited_levels)

    def test_max_report_through_simplex(self, rng):
        ds = random_dataset(rng, 150)
        index = SpKwIndex(ds, k=2)
        simplex = Simplex([(-1.0, -1.0), (25.0, -1.0), (-1.0, 25.0)])
        full = index.query_simplex(simplex, [1, 2])
        if len(full) >= 3:
            partial = index.query_simplex(simplex, [1, 2], max_report=3)
            assert len(partial) == 3


class TestCrossDimension:
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_orp_kw_all_dims(self, rng, dim):
        ds = random_dataset(rng, 80, dim=dim)
        index = OrpKwIndex(ds, k=2)
        for _ in range(8):
            ivs = [
                sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
                for _ in range(dim)
            ]
            rect = Rect([iv[0] for iv in ivs], [iv[1] for iv in ivs])
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_srp_3d(self, rng):
        ds = random_dataset(rng, 60, dim=3)
        index = SrpKwIndex(ds, k=2)  # lifted space is 4-D
        for _ in range(6):
            center = tuple(rng.uniform(0, 10) for _ in range(3))
            radius = rng.uniform(1.0, 6.0)
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(center, radius, words))
            want = sorted(
                o.oid
                for o in ds
                if sum((x - y) ** 2 for x, y in zip(o.point, center)) <= radius**2
                and o.contains_keywords(words)
            )
            assert got == want


class Test3DTriangulationCoverage:
    def test_random_3d_polytopes_covered(self, rng):
        from repro.geometry.halfspaces import HalfSpace
        from repro.geometry.polytope import polytope_from_constraints
        from repro.geometry.triangulate import decompose_polytope

        for _ in range(10):
            constraints = [
                HalfSpace(
                    tuple(rng.uniform(-1, 1) for _ in range(3)),
                    rng.uniform(0.3, 2.0),
                )
                for _ in range(rng.randint(1, 3))
            ]
            poly = polytope_from_constraints(
                constraints, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)
            )
            simplices = decompose_polytope(poly)
            for _ in range(100):
                point = tuple(rng.uniform(-0.5, 1.5) for _ in range(3))
                if poly.contains(point):
                    assert any(s.contains(point) for s in simplices), point

"""Unit tests for repro.core.lc_kw (Theorems 5 and 12)."""

import math

import pytest

from repro.core.lc_kw import LcKwIndex, SpKwIndex
from repro.costmodel import CostCounter
from repro.errors import GeometryError, ValidationError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.simplex import Simplex
from repro.partitiontree import WillardScheme

from helpers import random_dataset


def random_halfspace(rng, dim=2):
    return HalfSpace(
        tuple(rng.uniform(-1.0, 1.0) for _ in range(dim)), rng.uniform(-5.0, 15.0)
    )


class TestSpKw:
    def test_simplex_query_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 100)
        index = SpKwIndex(ds, k=2)
        for _ in range(15):
            verts = [(rng.uniform(-1, 11), rng.uniform(-1, 11)) for _ in range(3)]
            try:
                simplex = Simplex(verts)
            except GeometryError:
                continue
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query_simplex(simplex, words))
            want = sorted(
                o.oid
                for o in ds
                if simplex.contains(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_k3(self, rng):
        ds = random_dataset(rng, 80)
        index = SpKwIndex(ds, k=3)
        simplex = Simplex([(0.0, 0.0), (12.0, 0.0), (0.0, 12.0)])
        words = rng.sample(range(1, 9), 3)
        got = sorted(o.oid for o in index.query_simplex(simplex, words))
        want = sorted(
            o.oid for o in ds if simplex.contains(o.point) and o.contains_keywords(words)
        )
        assert got == want

    def test_willard_scheme_variant(self, rng):
        ds = random_dataset(rng, 90)
        index = SpKwIndex(ds, k=2, scheme=WillardScheme())
        for _ in range(10):
            verts = [(rng.uniform(-1, 11), rng.uniform(-1, 11)) for _ in range(3)]
            try:
                simplex = Simplex(verts)
            except GeometryError:
                continue
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query_simplex(simplex, words))
            want = sorted(
                o.oid
                for o in ds
                if simplex.contains(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_space_linear(self, rng):
        ds = random_dataset(rng, 500, vocabulary=30)
        index = SpKwIndex(ds, k=2)
        assert index.space_units <= 12 * index.input_size


class TestLcKw:
    def test_single_constraint(self, rng):
        ds = random_dataset(rng, 90)
        index = LcKwIndex(ds, k=2)
        for _ in range(12):
            h = random_halfspace(rng)
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query([h], words))
            want = sorted(
                o.oid for o in ds if h.contains(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_multiple_constraints(self, rng):
        ds = random_dataset(rng, 90)
        index = LcKwIndex(ds, k=2)
        for _ in range(12):
            cons = [random_halfspace(rng) for _ in range(rng.randint(2, 3))]
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(cons, words))
            want = sorted(
                o.oid
                for o in ds
                if all(h.contains(o.point) for h in cons)
                and o.contains_keywords(words)
            )
            assert got == want

    def test_no_constraints_is_pure_keyword_search(self, rng):
        ds = random_dataset(rng, 60)
        index = LcKwIndex(ds, k=2)
        words = rng.sample(range(1, 9), 2)
        got = sorted(o.oid for o in index.query([], words))
        want = sorted(o.oid for o in ds.matching(words))
        assert got == want

    def test_infeasible_conjunction_reports_nothing(self, rng):
        ds = random_dataset(rng, 50)
        index = LcKwIndex(ds, k=2)
        cons = [HalfSpace((1.0, 0.0), 1.0), HalfSpace((-1.0, 0.0), -9.0)]
        assert index.query(cons, [1, 2]) == []

    def test_no_duplicates_across_simplices(self, rng):
        """Objects on shared simplex facets must be reported once."""
        ds = random_dataset(rng, 80)
        index = LcKwIndex(ds, k=2)
        for _ in range(10):
            cons = [random_halfspace(rng) for _ in range(2)]
            words = rng.sample(range(1, 9), 2)
            found = [o.oid for o in index.query(cons, words)]
            assert len(found) == len(set(found))

    def test_3d_constraints(self, rng):
        ds = random_dataset(rng, 70, dim=3)
        index = LcKwIndex(ds, k=2)
        for _ in range(8):
            cons = [random_halfspace(rng, dim=3) for _ in range(rng.randint(1, 2))]
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(cons, words))
            want = sorted(
                o.oid
                for o in ds
                if all(h.contains(o.point) for h in cons)
                and o.contains_keywords(words)
            )
            assert got == want

    def test_dim_mismatch_rejected(self, rng):
        ds = random_dataset(rng, 20)
        index = LcKwIndex(ds, k=2)
        with pytest.raises(ValidationError):
            index.query([HalfSpace((1.0, 0.0, 0.0), 1.0)], [1, 2])

    def test_rect_as_four_constraints_matches_orp(self, rng):
        """§1.1: a d-rectangle is a conjunction of 2d linear constraints."""
        from repro.core.orp_kw import OrpKwIndex
        from repro.geometry.halfspaces import rect_to_halfspaces
        from repro.geometry.rectangles import Rect

        ds = random_dataset(rng, 80)
        lc = LcKwIndex(ds, k=2)
        orp = OrpKwIndex(ds, k=2)
        for _ in range(8):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            via_lc = sorted(
                o.oid for o in lc.query(list(rect_to_halfspaces(rect.lo, rect.hi)), words)
            )
            via_orp = sorted(o.oid for o in orp.query(rect, words))
            assert via_lc == via_orp

    def test_empty_output_cost_sublinear(self, rng):
        from repro.dataset import Dataset

        n = 2000
        points = [(rng.random() * 10, rng.random() * 10) for _ in range(n)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(n)]
        ds = Dataset.from_points(points, docs)
        index = LcKwIndex(ds, k=2)
        counter = CostCounter()
        out = index.query([HalfSpace((1.0, 1.0), 15.0)], [1, 2], counter=counter)
        assert out == []
        assert counter.total <= 8 * math.sqrt(index.input_size)

"""Unit tests for repro.core.orp_kw (Theorem 1)."""

import math

import pytest

from repro.core.orp_kw import OrpKwIndex
from repro.core.transform import QueryStats
from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect

from helpers import duplicate_heavy_dataset, random_dataset


class TestCorrectness:
    def test_hand_example(self, tiny_dataset):
        index = OrpKwIndex(tiny_dataset, k=2)
        found = index.query(Rect((0.0, 0.0), (9.0, 9.0)), [1, 2])
        assert sorted(o.oid for o in found) == [0, 3]
        found = index.query(Rect((0.0, 0.0), (3.0, 6.0)), [1, 3])
        assert sorted(o.oid for o in found) == [1]

    def test_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 120)
        for k in (2, 3):
            index = OrpKwIndex(ds, k=k)
            for _ in range(15):
                a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
                c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
                rect = Rect((a, c), (b, d))
                words = rng.sample(range(1, 9), k)
                got = sorted(o.oid for o in index.query(rect, words))
                want = sorted(
                    o.oid
                    for o in ds
                    if rect.contains_point(o.point) and o.contains_keywords(words)
                )
                assert got == want

    def test_degenerate_positions(self, rng):
        """§3.4: rank space removes the general-position assumption."""
        ds = duplicate_heavy_dataset(rng, 90)
        index = OrpKwIndex(ds, k=2)
        for _ in range(25):
            a, b = sorted([rng.uniform(-1, 5), rng.uniform(-1, 5)])
            c, d = sorted([rng.uniform(-1, 5), rng.uniform(-1, 5)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 7), 2)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_1d_data(self, rng):
        ds = random_dataset(rng, 70, dim=1)
        index = OrpKwIndex(ds, k=2)
        for _ in range(15):
            a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(Rect((a,), (b,)), words))
            want = sorted(
                o.oid for o in ds if a <= o.point[0] <= b and o.contains_keywords(words)
            )
            assert got == want

    def test_full_space_query_equals_pure_keyword_search(self, rng):
        ds = random_dataset(rng, 60)
        index = OrpKwIndex(ds, k=2)
        words = rng.sample(range(1, 9), 2)
        got = sorted(o.oid for o in index.query(Rect.full(2), words))
        want = sorted(o.oid for o in ds.matching(words))
        assert got == want

    def test_returns_original_objects(self, tiny_dataset):
        index = OrpKwIndex(tiny_dataset, k=2)
        found = index.query(Rect.full(2), [1, 2])
        for obj in found:
            assert obj is tiny_dataset[obj.oid]


class TestValidation:
    def test_k_below_two_rejected(self, tiny_dataset):
        with pytest.raises(ValidationError):
            OrpKwIndex(tiny_dataset, k=1)

    def test_wrong_query_dim_rejected(self, tiny_dataset):
        index = OrpKwIndex(tiny_dataset, k=2)
        with pytest.raises(ValidationError):
            index.query(Rect((0.0,), (1.0,)), [1, 2])

    def test_wrong_keyword_count_rejected(self, tiny_dataset):
        index = OrpKwIndex(tiny_dataset, k=2)
        with pytest.raises(ValidationError):
            index.query(Rect.full(2), [1, 2, 3])


class TestComplexityShape:
    def test_space_linear(self, rng):
        ds = random_dataset(rng, 600, vocabulary=40)
        index = OrpKwIndex(ds, k=2)
        assert index.space_units <= 12 * index.input_size

    def test_pivot_sets_constant(self, rng):
        ds = random_dataset(rng, 400)
        index = OrpKwIndex(ds, k=2)
        assert index.max_pivot_size() <= 4

    def test_empty_output_cost_sublinear(self, rng):
        """Two disjoint keyword populations: OUT = 0, cost ≪ N."""
        n = 3000
        points = [(rng.random(), rng.random()) for _ in range(n)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(n)]
        ds = Dataset.from_points(points, docs)
        index = OrpKwIndex(ds, k=2)
        counter = CostCounter()
        out = index.query(Rect.full(2), [1, 2], counter=counter)
        assert out == []
        assert counter.total <= 4 * math.sqrt(index.input_size)

    def test_cost_within_constant_of_bound(self, rng):
        ds = random_dataset(rng, 1500, vocabulary=12, doc_max=4)
        index = OrpKwIndex(ds, k=2)
        n = index.input_size
        for side in (2.0, 6.0, 10.0):
            counter = CostCounter()
            rect = Rect((5 - side / 2, 5 - side / 2), (5 + side / 2, 5 + side / 2))
            out = index.query(rect, [1, 2], counter=counter)
            bound = math.sqrt(n) * (1 + math.sqrt(len(out)))
            assert counter.total <= 20 * bound

    def test_stats_crossing_sensitivity(self, rng):
        """Lemma 10: crossing leaf power sum is O(N^(1-1/k))."""
        ds = random_dataset(rng, 2000, vocabulary=10)
        index = OrpKwIndex(ds, k=2)
        stats = QueryStats()
        index.query(Rect((2.0, 2.0), (8.0, 8.0)), [1, 2], stats=stats)
        assert stats.crossing_leaf_power_sum <= 24 * math.sqrt(index.input_size)

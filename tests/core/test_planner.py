"""Unit tests for repro.core.planner."""

import pytest

from repro.core.planner import STRATEGIES, HybridPlanner
from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect

from helpers import random_dataset


class TestCorrectness:
    def test_all_strategies_exact(self, rng):
        ds = random_dataset(rng, 120)
        planner = HybridPlanner(ds, k=2)
        for _ in range(12):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            brute = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert sorted(o.oid for o in planner.query(rect, words)) == brute
            for strategy in STRATEGIES:
                got = sorted(
                    o.oid for o in planner.query_with(strategy, rect, words)
                )
                assert got == brute, strategy

    def test_last_plan_recorded(self, rng):
        ds = random_dataset(rng, 60)
        planner = HybridPlanner(ds, k=2)
        planner.query(Rect.full(2), [1, 2])
        assert planner.last_plan is not None
        assert planner.last_plan["choice"] in STRATEGIES


class TestRouting:
    def test_fallback_prefers_short_posting_list(self, rng):
        # Keyword 9 appears once: the shortest-posting estimate is 1.
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(300)]
        docs = [[1, 2] for _ in range(299)] + [[1, 9]]
        ds = Dataset.from_points(points, docs)
        planner = HybridPlanner(ds, k=2)
        assert planner.choose(Rect.full(2), [1, 9]) == "keywords_only"

    def test_fallback_prefers_tiny_rectangle(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(300)]
        docs = [[1, 2] for _ in range(300)]
        ds = Dataset.from_points(points, docs)
        planner = HybridPlanner(ds, k=2)
        sliver = Rect((5.0, 5.0), (5.0001, 5.0001))
        assert planner.choose(sliver, [1, 2]) == "structured_only"

    def test_race_picks_fused_on_adversarial_data(self, rng):
        """Disjoint keywords: fused finishes in O(1) — well inside budget."""
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(800)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(800)]
        ds = Dataset.from_points(points, docs)
        planner = HybridPlanner(ds, k=2)
        counter = CostCounter()
        out = planner.query(Rect.full(2), [1, 2], counter=counter)
        assert out == []
        assert planner.last_plan["choice"] == "fused"
        assert counter.total < 400  # far below the naive 400-800

    def test_planner_near_optimal_in_aggregate(self, rng):
        """Across a workload, planned cost stays within ~3x the per-query
        optimum (single queries can exceed it when the sample-based
        selectivity estimate misfires; the race bounds the damage)."""
        ds = random_dataset(rng, 400, vocabulary=12)
        planner = HybridPlanner(ds, k=2)
        total_planned = 0
        total_best = 0
        for _ in range(15):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 13), 2)
            counter = CostCounter()
            planner.query(rect, words, counter=counter)
            total_planned += counter.total
            total_best += min(
                _run_cost(planner, s, rect, words) for s in STRATEGIES
            )
        assert total_planned <= 3 * total_best + 96, (total_planned, total_best)

    def test_race_never_exceeds_fused_plus_fallback(self, rng):
        """The structural bound of the race, per query."""
        ds = random_dataset(rng, 300, vocabulary=10)
        planner = HybridPlanner(ds, k=2)
        for _ in range(10):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 11), 2)
            counter = CostCounter()
            planner.query(rect, words, counter=counter)
            fallback = planner.last_plan["fallback"]
            ceiling = (
                _run_cost(planner, "fused", rect, words)
                + _run_cost(planner, fallback, rect, words)
                + 64
            )
            assert counter.total <= ceiling


def _run_cost(planner, strategy, rect, words) -> int:
    counter = CostCounter()
    planner.query_with(strategy, rect, words, counter=counter)
    return counter.total


class TestValidation:
    def test_bad_sample_size(self, rng):
        with pytest.raises(ValidationError):
            HybridPlanner(random_dataset(rng, 10), k=2, sample_size=0)

    def test_unknown_strategy(self, rng):
        planner = HybridPlanner(random_dataset(rng, 10), k=2)
        with pytest.raises(ValidationError):
            planner.query_with("oracle", Rect.full(2), [1, 2])

    def test_empty_keywords_rejected(self, rng):
        planner = HybridPlanner(random_dataset(rng, 10), k=2)
        for method in (planner.estimate, planner.choose, planner.query):
            with pytest.raises(ValidationError):
                method(Rect.full(2), [])


class TestEmptyDataset:
    """Regression: _selectivity divided by len(sample) == 0, so the planner
    crashed with ZeroDivisionError on an empty dataset."""

    def test_constructible_and_queryable(self):
        planner = HybridPlanner(Dataset.empty(2), k=2)
        rect = Rect((0.0, 0.0), (5.0, 5.0))
        assert planner.estimate(rect, [1, 2])["selectivity"] == 0.0
        counter = CostCounter()
        assert planner.query(rect, [1, 2], counter=counter) == []
        assert planner.last_plan["choice"] in STRATEGIES
        for strategy in STRATEGIES:
            assert planner.query_with(strategy, rect, [1, 2]) == []

    def test_empty_dataset_still_validates_keywords(self):
        planner = HybridPlanner(Dataset.empty(2), k=2)
        with pytest.raises(ValidationError):
            planner.query(Rect.full(2), [])

    def test_space_units_finite(self):
        assert HybridPlanner(Dataset.empty(2), k=2).space_units == 0


class TestStrategyOrdering:
    def test_strategies_by_cost_sorted(self, rng):
        ds = random_dataset(rng, 150)
        planner = HybridPlanner(ds, k=2)
        rect = Rect((2.0, 2.0), (8.0, 8.0))
        order = planner.strategies_by_cost(rect, [1, 2])
        assert sorted(order) == sorted(STRATEGIES)
        estimates = planner.estimate(rect, [1, 2])
        costs = [estimates[s] for s in order]
        assert costs == sorted(costs)

"""Unit tests for repro.core.baselines (the §1 naive solutions)."""

from repro.core.baselines import (
    KeywordsOnlyIndex,
    NaiveRectangleIndex,
    ScanAllNn,
    StructuredOnlyIndex,
    l2_distance_squared,
    linf_distance,
)
from repro.costmodel import CostCounter
from repro.dataset import RectangleObject
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect
from repro.geometry.regions import ConvexRegion

from helpers import random_dataset


class TestDistances:
    def test_linf(self):
        assert linf_distance((0.0, 0.0), (3.0, -4.0)) == 4.0

    def test_l2_squared(self):
        assert l2_distance_squared((0.0, 0.0), (3.0, 4.0)) == 25.0


class TestStructuredOnly:
    def test_rect_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 80)
        baseline = StructuredOnlyIndex(ds)
        for _ in range(15):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in baseline.query_rect(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_constraints(self, rng):
        ds = random_dataset(rng, 60)
        baseline = StructuredOnlyIndex(ds)
        h = HalfSpace((1.0, 1.0), 10.0)
        words = rng.sample(range(1, 9), 2)
        got = sorted(o.oid for o in baseline.query_constraints([h], words))
        want = sorted(
            o.oid for o in ds if h.contains(o.point) and o.contains_keywords(words)
        )
        assert got == want

    def test_cost_tracks_geometric_candidates(self, rng):
        """Structured-only pays for every point in the rectangle even when
        no candidate has the keywords — the §1 drawback."""
        ds = random_dataset(rng, 200)
        baseline = StructuredOnlyIndex(ds)
        counter = CostCounter()
        out = baseline.query_rect(Rect.full(2), [98, 99], counter)
        assert out == []
        assert counter["objects_examined"] >= len(ds)


class TestKeywordsOnly:
    def test_rect_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 80)
        baseline = KeywordsOnlyIndex(ds)
        for _ in range(15):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in baseline.query_rect(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_region_variant(self, rng):
        ds = random_dataset(rng, 60)
        baseline = KeywordsOnlyIndex(ds)
        region = ConvexRegion([HalfSpace((1.0, -1.0), 2.0)])
        words = rng.sample(range(1, 9), 2)
        got = sorted(o.oid for o in baseline.query_region(region, words))
        want = sorted(
            o.oid
            for o in ds
            if region.contains_point(o.point) and o.contains_keywords(words)
        )
        assert got == want

    def test_cost_tracks_posting_list(self, rng):
        """Keywords-only pays for the whole shortest posting list even when
        the rectangle is empty — the other §1 drawback."""
        ds = random_dataset(rng, 200, vocabulary=3, doc_max=2)
        baseline = KeywordsOnlyIndex(ds)
        counter = CostCounter()
        empty_rect = Rect((50.0, 50.0), (51.0, 51.0))
        out = baseline.query_rect(empty_rect, [1, 2], counter)
        assert out == []
        assert counter["objects_examined"] > 0

    def test_nearest(self, rng):
        ds = random_dataset(rng, 60, vocabulary=5)
        baseline = KeywordsOnlyIndex(ds)
        q = (5.0, 5.0)
        words = rng.sample(range(1, 6), 2)
        got = baseline.nearest(q, 3, words, linf_distance)
        matches = sorted(
            (o for o in ds if o.contains_keywords(words)),
            key=lambda o: (linf_distance(q, o.point), o.oid),
        )
        assert [o.oid for o in got] == [o.oid for o in matches[:3]]


class TestScanAllNn:
    def test_matches_keywords_only(self, rng):
        ds = random_dataset(rng, 50, vocabulary=5)
        scan = ScanAllNn(ds)
        kw = KeywordsOnlyIndex(ds)
        q = (3.0, 7.0)
        words = rng.sample(range(1, 6), 2)
        a = [o.oid for o in scan.nearest(q, 4, words, linf_distance)]
        b = [o.oid for o in kw.nearest(q, 4, words, linf_distance)]
        assert a == b

    def test_cost_is_linear(self, rng):
        ds = random_dataset(rng, 120, vocabulary=5)
        scan = ScanAllNn(ds)
        counter = CostCounter()
        scan.nearest((0.0, 0.0), 1, [1, 2], linf_distance, counter=counter)
        assert counter["objects_examined"] == 120


class TestNaiveRectangleIndex:
    def test_both_variants_agree(self, rng):
        rects = []
        for i in range(60):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rects.append(
                RectangleObject(
                    oid=i,
                    lo=(a,),
                    hi=(b,),
                    doc=frozenset(rng.sample(range(1, 6), rng.randint(1, 3))),
                )
            )
        naive = NaiveRectangleIndex(rects)
        for _ in range(15):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            words = rng.sample(range(1, 6), 2)
            structured = sorted(r.oid for r in naive.query_structured((a,), (b,), words))
            keywords = sorted(r.oid for r in naive.query_keywords((a,), (b,), words))
            assert structured == keywords

"""Tests for the budgeted emptiness queries (the paper's footnote 4)."""

import math

from repro.core.lc_kw import LcKwIndex
from repro.core.orp_kw import OrpKwIndex
from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect

from helpers import random_dataset


class TestOrpEmptiness:
    def test_agrees_with_reporting(self, rng):
        ds = random_dataset(rng, 90)
        index = OrpKwIndex(ds, k=2)
        for _ in range(20):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            want_empty = not index.query(rect, words)
            assert index.is_empty(rect, words) == want_empty

    def test_empty_side_cost_sublinear(self, rng):
        n = 3000
        points = [(rng.random(), rng.random()) for _ in range(n)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(n)]
        ds = Dataset.from_points(points, docs)
        index = OrpKwIndex(ds, k=2)
        counter = CostCounter()
        assert index.is_empty(Rect.full(2), [1, 2], counter=counter)
        assert counter.total <= 8 * math.sqrt(index.input_size)

    def test_nonempty_side_terminates_fast(self, rng):
        """With max_report=1 the probe stops at the first hit."""
        n = 3000
        points = [(rng.random(), rng.random()) for _ in range(n)]
        docs = [[1, 2] for _ in range(n)]  # everything matches
        ds = Dataset.from_points(points, docs)
        index = OrpKwIndex(ds, k=2)
        counter = CostCounter()
        assert not index.is_empty(Rect.full(2), [1, 2], counter=counter)
        assert counter.total <= 32 * math.sqrt(index.input_size)


class TestLcEmptiness:
    def test_agrees_with_reporting(self, rng):
        ds = random_dataset(rng, 70)
        index = LcKwIndex(ds, k=2)
        for _ in range(12):
            cons = [
                HalfSpace(
                    (rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(-5, 15)
                )
                for _ in range(rng.randint(1, 2))
            ]
            words = rng.sample(range(1, 9), 2)
            want_empty = not index.query(cons, words)
            assert index.is_empty(cons, words) == want_empty

    def test_infeasible_constraints_are_empty(self, rng):
        ds = random_dataset(rng, 40)
        index = LcKwIndex(ds, k=2)
        cons = [HalfSpace((1.0, 0.0), 0.0), HalfSpace((-1.0, 0.0), -9.0)]
        assert index.is_empty(cons, [1, 2])


class TestDimReductionAndSrpEmptiness:
    def test_dim_reduction_agrees(self, rng):
        ds = random_dataset(rng, 60, dim=3)
        from repro.core.dim_reduction import DimReductionOrpKw

        index = DimReductionOrpKw(ds, k=2)
        for _ in range(8):
            ivs = [sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)]) for _ in range(3)]
            rect = Rect([iv[0] for iv in ivs], [iv[1] for iv in ivs])
            words = rng.sample(range(1, 9), 2)
            assert index.is_empty(rect, words) == (not index.query(rect, words))

    def test_srp_agrees(self, rng):
        from repro.core.srp_kw import SrpKwIndex

        ds = random_dataset(rng, 60)
        index = SrpKwIndex(ds, k=2)
        for _ in range(8):
            center = (rng.uniform(0, 10), rng.uniform(0, 10))
            radius = rng.uniform(0.2, 5.0)
            words = rng.sample(range(1, 9), 2)
            assert index.is_empty(center, radius, words) == (
                not index.query(center, radius, words)
            )

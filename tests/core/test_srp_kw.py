"""Unit tests for repro.core.srp_kw (Corollary 6)."""

import pytest

from repro.core.srp_kw import SrpKwIndex
from repro.costmodel import CostCounter
from repro.errors import ValidationError

from helpers import duplicate_heavy_dataset, random_dataset


def in_ball(point, center, radius):
    return sum((a - b) ** 2 for a, b in zip(point, center)) <= radius * radius


class TestCorrectness:
    def test_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 90, vocabulary=6)
        index = SrpKwIndex(ds, k=2)
        for _ in range(15):
            center = (rng.uniform(0, 10), rng.uniform(0, 10))
            radius = rng.uniform(0.5, 6.0)
            words = rng.sample(range(1, 7), 2)
            got = sorted(o.oid for o in index.query(center, radius, words))
            want = sorted(
                o.oid
                for o in ds
                if in_ball(o.point, center, radius) and o.contains_keywords(words)
            )
            assert got == want

    def test_k3(self, rng):
        ds = random_dataset(rng, 70, vocabulary=6)
        index = SrpKwIndex(ds, k=3)
        center, radius = (5.0, 5.0), 4.0
        words = rng.sample(range(1, 7), 3)
        got = sorted(o.oid for o in index.query(center, radius, words))
        want = sorted(
            o.oid
            for o in ds
            if in_ball(o.point, center, radius) and o.contains_keywords(words)
        )
        assert got == want

    def test_zero_radius(self, rng):
        ds = duplicate_heavy_dataset(rng, 60)
        index = SrpKwIndex(ds, k=2)
        obj = ds.objects[0]
        words = sorted(obj.doc)[:2]
        if len(words) == 2:
            got = index.query(obj.point, 0.0, words)
            assert all(o.point == obj.point for o in got)
            assert any(o.oid == obj.oid for o in got)

    def test_tiny_and_huge_radii(self, rng):
        ds = random_dataset(rng, 50, vocabulary=6)
        index = SrpKwIndex(ds, k=2)
        words = rng.sample(range(1, 7), 2)
        assert index.query((20.0, 20.0), 0.001, words) == []
        got = sorted(o.oid for o in index.query((5.0, 5.0), 100.0, words))
        want = sorted(o.oid for o in ds.matching(words))
        assert got == want

    def test_1d_data(self, rng):
        ds = random_dataset(rng, 60, dim=1, vocabulary=6)
        index = SrpKwIndex(ds, k=2)
        for _ in range(10):
            center = (rng.uniform(0, 10),)
            radius = rng.uniform(0.5, 4.0)
            words = rng.sample(range(1, 7), 2)
            got = sorted(o.oid for o in index.query(center, radius, words))
            want = sorted(
                o.oid
                for o in ds
                if abs(o.point[0] - center[0]) <= radius and o.contains_keywords(words)
            )
            assert got == want


class TestValidation:
    def test_negative_radius_rejected(self, rng):
        ds = random_dataset(rng, 20)
        index = SrpKwIndex(ds, k=2)
        with pytest.raises(ValidationError):
            index.query((0.0, 0.0), -1.0, [1, 2])

    def test_center_dim_mismatch_rejected(self, rng):
        ds = random_dataset(rng, 20)
        index = SrpKwIndex(ds, k=2)
        with pytest.raises(ValidationError):
            index.query((0.0,), 1.0, [1, 2])

    def test_space_linear(self, rng):
        ds = random_dataset(rng, 400, vocabulary=20)
        index = SrpKwIndex(ds, k=2)
        assert index.space_units <= 12 * index.input_size

    def test_counter_charged(self, rng):
        ds = random_dataset(rng, 60)
        index = SrpKwIndex(ds, k=2)
        counter = CostCounter()
        index.query((5.0, 5.0), 3.0, rng.sample(range(1, 9), 2), counter=counter)
        assert counter.total > 0

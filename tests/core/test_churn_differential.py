"""Churn differential harness: every dynamized index vs a rebuild oracle.

The Bentley–Saxe layer (:mod:`repro.core.dynamize`) must be *invisible* to
correctness: at any point of any insert/delete history, a dynamized index
answers exactly like a static index rebuilt from scratch over the current
live set.  This harness drives every dynamized Table-1 family through
seeded insert/delete/query mixes — zipf and planted keyword workloads,
several seeds — and checks the returned id-sets against the oracle at every
step, plus the maintenance-cost invariant (epoch snapshots are monotone).

The oracle rebuilds the static index fresh for each check, so any staleness
the ladder could introduce (a carry merge dropping objects, a tombstone
leaking through a rebuild, a bucket serving a dead object) shows up as a
set difference with the exact step index in the failure message.
"""

import random

import pytest

from repro.core.baselines import KeywordsOnlyIndex
from repro.core.dynamic import DynamicOrpKw
from repro.core.dynamize import (
    DynamicKeywordsOnly,
    DynamicLcKw,
    DynamicMultiKOrp,
    DynamicSrpKw,
)
from repro.core.lc_kw import LcKwIndex
from repro.core.multi_k import MultiKOrpIndex
from repro.core.orp_kw import OrpKwIndex
from repro.core.srp_kw import SrpKwIndex
from repro.costmodel import CostCounter
from repro.dataset import Dataset, KeywordObject
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect

SEEDS = (3, 11, 29)
WORKLOADS = ("zipf", "planted")

#: Kept small: LC-KW / SRP-KW bucket builds are partition-tree builds, and
#: the oracle rebuilds the full static index after every mutation.
NUM_OBJECTS = 36
DELETE_EVERY = 3  # one delete per three inserts, once warmed up
CHECK_EVERY = 4  # oracle comparison cadence (every step would be O(n^2) builds)


def _workload(kind, seed, num=NUM_OBJECTS):
    """Seeded points + docs; every doc contains the two probe keywords'
    superset structure the planted variant concentrates."""
    rng = random.Random(seed)
    points = [(rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)) for _ in range(num)]
    if kind == "zipf":
        # Zipf-ish docs over a small vocabulary: keyword w with p ~ 1/w.
        vocabulary = list(range(1, 9))
        weights = [1.0 / w for w in vocabulary]
        docs = []
        for _ in range(num):
            doc = {1, 2} if rng.random() < 0.5 else set()
            while len(doc) < 2:
                doc.add(rng.choices(vocabulary, weights)[0])
            docs.append(doc)
    else:
        # Planted: a fixed fraction carries exactly the probe pair, the rest
        # draw from the tail vocabulary only.
        docs = [
            {1, 2} if i % 3 == 0 else {rng.randint(3, 8), rng.randint(3, 8), 9}
            for i in range(num)
        ]
    return points, docs


def _churn_steps(index, points, docs, seed):
    """Drive a seeded insert/delete mix; yield (step, live_objects) after
    every mutation.  ``live_objects`` maps the *index's* oids to objects."""
    rng = random.Random(seed + 1)
    live = {}
    step = 0
    for point, doc in zip(points, docs):
        oid = index.insert(point, doc)
        live[oid] = KeywordObject(oid=oid, point=tuple(point), doc=frozenset(doc))
        step += 1
        yield step, live
        if len(live) > 6 and step % DELETE_EVERY == 0:
            victim = rng.choice(sorted(live))
            index.delete(victim)
            del live[victim]
            step += 1
            yield step, live


def _rebuilt_dataset(live):
    """The oracle's input: live objects re-idded densely (Dataset needs
    unique ids; the mapping back to the dynamized index's oids is kept)."""
    ordered = [live[oid] for oid in sorted(live)]
    local = [
        KeywordObject(oid=i, point=obj.point, doc=obj.doc)
        for i, obj in enumerate(ordered)
    ]
    return Dataset(local), [obj.oid for obj in ordered]


RECT = Rect((2.0, 2.0), (8.0, 8.0))
KEYWORDS = [1, 2]
CONSTRAINTS = (HalfSpace((1.0, 0.0), 6.0), HalfSpace((0.0, -1.0), -2.0))
CENTER, RADIUS = (5.0, 5.0), 3.0


class Family:
    """One dynamized family + its rebuild-from-scratch oracle."""

    name = "family"

    def make_dynamic(self):
        raise NotImplementedError

    def query_dynamic(self, index, counter):
        raise NotImplementedError

    def query_oracle(self, dataset, counter):
        """Build the static index fresh over ``dataset`` and query it."""
        raise NotImplementedError


class OrpFamily(Family):
    name = "orp_kw"

    def make_dynamic(self):
        return DynamicOrpKw(k=2, dim=2)

    def query_dynamic(self, index, counter):
        return index.query(RECT, KEYWORDS, counter)

    def query_oracle(self, dataset, counter):
        return OrpKwIndex(dataset, 2).query(RECT, KEYWORDS, counter)


class KeywordsOnlyFamily(Family):
    name = "keywords_only"

    def make_dynamic(self):
        return DynamicKeywordsOnly(dim=2)

    def query_dynamic(self, index, counter):
        return index.query(RECT, KEYWORDS, counter)

    def query_oracle(self, dataset, counter):
        return KeywordsOnlyIndex(dataset).query_rect(RECT, KEYWORDS, counter)


class LcFamily(Family):
    name = "lc_kw"

    def make_dynamic(self):
        return DynamicLcKw(k=2, dim=2)

    def query_dynamic(self, index, counter):
        return index.query(CONSTRAINTS, KEYWORDS, counter)

    def query_oracle(self, dataset, counter):
        return LcKwIndex(dataset, 2).query(CONSTRAINTS, KEYWORDS, counter)


class SrpFamily(Family):
    name = "srp_kw"

    def make_dynamic(self):
        return DynamicSrpKw(k=2, dim=2)

    def query_dynamic(self, index, counter):
        return index.query(CENTER, RADIUS, KEYWORDS, counter)

    def query_oracle(self, dataset, counter):
        return SrpKwIndex(dataset, 2).query(CENTER, RADIUS, KEYWORDS, counter)


class MultiKFamily(Family):
    name = "multi_k_orp"

    def make_dynamic(self):
        return DynamicMultiKOrp(dim=2, max_k=3)

    def query_dynamic(self, index, counter):
        return index.query(RECT, KEYWORDS, counter)

    def query_oracle(self, dataset, counter):
        return MultiKOrpIndex(dataset, max_k=3).query(RECT, KEYWORDS, counter)


FAMILIES = (
    OrpFamily(),
    KeywordsOnlyFamily(),
    LcFamily(),
    SrpFamily(),
    MultiKFamily(),
)


@pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.name)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", SEEDS)
class TestChurnDifferential:
    def test_matches_rebuild_oracle_at_every_step(self, family, workload, seed):
        """Same result id-set as a from-scratch rebuild, throughout churn."""
        points, docs = _workload(workload, seed)
        index = family.make_dynamic()
        checked = 0
        for step, live in _churn_steps(index, points, docs, seed):
            assert len(index) == len(live)
            if step % CHECK_EVERY and step != 1:
                continue
            dataset, oid_map = _rebuilt_dataset(live)
            got = {obj.oid for obj in family.query_dynamic(index, CostCounter())}
            expected = {
                oid_map[obj.oid]
                for obj in family.query_oracle(dataset, CostCounter())
            }
            assert got == expected, (
                f"{family.name}/{workload}/seed={seed}: divergence at step "
                f"{step}: dynamic-only={sorted(got - expected)}, "
                f"oracle-only={sorted(expected - got)}"
            )
            checked += 1
        assert checked >= 5  # the mix actually exercised the comparison

    def test_maintenance_snapshots_monotone_across_epochs(
        self, family, workload, seed
    ):
        """Epoch maintenance snapshots never decrease (cumulative charges)."""
        points, docs = _workload(workload, seed)
        index = family.make_dynamic()
        previous = index.epoch.maintenance["total"]
        epochs = [index.epoch.epoch_id]
        for _step, _live in _churn_steps(index, points, docs, seed):
            snapshot = index.epoch.maintenance
            assert snapshot["total"] >= previous
            previous = snapshot["total"]
            epochs.append(index.epoch.epoch_id)
        assert epochs == sorted(epochs)
        # Churn performed real maintenance work, and the live maintenance
        # counter agrees with the last published snapshot.
        assert index.maintenance.total == index.epoch.maintenance["total"] > 0

"""Unit tests for repro.core.selection (candidate radii)."""

import pytest

from repro.core.selection import CandidateRadii
from repro.costmodel import CostCounter
from repro.errors import ValidationError


def brute_candidates(points, q):
    values = []
    for p in points:
        for axis in range(len(q)):
            values.append(abs(q[axis] - p[axis]))
    return sorted(values)


class TestCountWithin:
    def test_agrees_with_brute_force(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(40)]
        radii = CandidateRadii(points)
        q = (rng.uniform(0, 10), rng.uniform(0, 10))
        cands = brute_candidates(points, q)
        for r in [0.0, 0.5, 2.0, 5.0, 20.0]:
            want = sum(1 for c in cands if c <= r)
            assert radii.count_within(q, r) == want

    def test_zero_radius_counts_exact_hits(self):
        radii = CandidateRadii([(1.0, 2.0), (1.0, 3.0)])
        assert radii.count_within((1.0, 0.0), 0.0) == 2  # both x-coords match

    def test_counter_charged(self):
        radii = CandidateRadii([(1.0,)])
        counter = CostCounter()
        radii.count_within((0.0,), 1.0, counter)
        assert counter["comparisons"] > 0


class TestSuccessor:
    def test_agrees_with_brute_force(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(30)]
        radii = CandidateRadii(points)
        q = (rng.uniform(0, 10), rng.uniform(0, 10))
        cands = brute_candidates(points, q)
        for r in [0.0, 0.3, 1.7, 4.0]:
            want = next((c for c in cands if c > r), None)
            got = radii.successor(q, r)
            if want is None:
                assert got is None
            else:
                assert got == pytest.approx(want)

    def test_beyond_max_returns_none(self):
        radii = CandidateRadii([(1.0,), (2.0,)])
        assert radii.successor((0.0,), 10.0) is None

    def test_strictness(self):
        radii = CandidateRadii([(3.0,)])
        # candidate at distance 3 from q=0; successor of exactly 3 is None
        assert radii.successor((0.0,), 3.0) is None
        assert radii.successor((0.0,), 2.999) == pytest.approx(3.0)


class TestMaxRadius:
    def test_covers_all_candidates(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(30)]
        radii = CandidateRadii(points)
        q = (rng.uniform(-5, 15), rng.uniform(-5, 15))
        cands = brute_candidates(points, q)
        assert radii.max_radius(q) == pytest.approx(cands[-1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CandidateRadii([])

"""Unit tests for repro.core.rr_kw (Corollary 3)."""

import pytest

from repro.core.rr_kw import RrKwIndex, _corner_point
from repro.dataset import RectangleObject
from repro.errors import ValidationError


def random_rectangles(rng, count, dim, vocabulary=6):
    rects = []
    for i in range(count):
        lo, hi = [], []
        for _ in range(dim):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            lo.append(a)
            hi.append(b)
        rects.append(
            RectangleObject(
                oid=i,
                lo=tuple(lo),
                hi=tuple(hi),
                doc=frozenset(rng.sample(range(1, vocabulary + 1), rng.randint(1, 3))),
            )
        )
    return rects


class TestCornerPoint:
    def test_interleaves_corners(self):
        rect = RectangleObject(oid=0, lo=(1.0, 3.0), hi=(2.0, 4.0), doc=frozenset({1}))
        assert _corner_point(rect) == (1.0, 2.0, 3.0, 4.0)


class TestIntervals:
    """d = 1: keyword search over temporal documents."""

    def test_agrees_with_brute_force(self, rng):
        rects = random_rectangles(rng, 100, dim=1)
        index = RrKwIndex(rects, k=2)
        for _ in range(25):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            words = rng.sample(range(1, 7), 2)
            got = sorted(r.oid for r in index.query((a,), (b,), words))
            want = sorted(
                r.oid
                for r in rects
                if r.intersects((a,), (b,)) and r.contains_keywords(words)
            )
            assert got == want

    def test_point_stab(self, rng):
        rects = random_rectangles(rng, 80, dim=1)
        index = RrKwIndex(rects, k=2)
        for _ in range(15):
            x = rng.uniform(0, 10)
            words = rng.sample(range(1, 7), 2)
            got = sorted(r.oid for r in index.query((x,), (x,), words))
            want = sorted(
                r.oid
                for r in rects
                if r.lo[0] <= x <= r.hi[0] and r.contains_keywords(words)
            )
            assert got == want


class TestBoxes:
    """d = 2: geographic MBRs."""

    def test_agrees_with_brute_force(self, rng):
        rects = random_rectangles(rng, 70, dim=2)
        index = RrKwIndex(rects, k=2)
        for _ in range(15):
            lo = (rng.uniform(0, 10), rng.uniform(0, 10))
            hi = (lo[0] + rng.uniform(0, 5), lo[1] + rng.uniform(0, 5))
            words = rng.sample(range(1, 7), 2)
            got = sorted(r.oid for r in index.query(lo, hi, words))
            want = sorted(
                r.oid
                for r in rects
                if r.intersects(lo, hi) and r.contains_keywords(words)
            )
            assert got == want

    def test_touching_counts_as_intersecting(self):
        rects = [
            RectangleObject(oid=0, lo=(0.0, 0.0), hi=(1.0, 1.0), doc=frozenset({1, 2}))
        ]
        index = RrKwIndex(rects, k=2)
        got = index.query((1.0, 1.0), (2.0, 2.0), [1, 2])
        assert [r.oid for r in got] == [0]


class TestValidation:
    def test_empty_input_rejected(self):
        with pytest.raises(ValidationError):
            RrKwIndex([], k=2)

    def test_mixed_dims_rejected(self):
        rects = [
            RectangleObject(oid=0, lo=(0.0,), hi=(1.0,), doc=frozenset({1})),
            RectangleObject(oid=1, lo=(0.0, 0.0), hi=(1.0, 1.0), doc=frozenset({1})),
        ]
        with pytest.raises(ValidationError):
            RrKwIndex(rects, k=2)

    def test_duplicate_ids_rejected(self):
        rects = [
            RectangleObject(oid=0, lo=(0.0,), hi=(1.0,), doc=frozenset({1})),
            RectangleObject(oid=0, lo=(2.0,), hi=(3.0,), doc=frozenset({1})),
        ]
        with pytest.raises(ValidationError):
            RrKwIndex(rects, k=2)

    def test_query_dim_mismatch_rejected(self, rng):
        rects = random_rectangles(rng, 10, dim=1)
        index = RrKwIndex(rects, k=2)
        with pytest.raises(ValidationError):
            index.query((0.0, 0.0), (1.0, 1.0), [1, 2])

    def test_space_linear_for_intervals(self, rng):
        rects = random_rectangles(rng, 400, dim=1)
        index = RrKwIndex(rects, k=2)
        assert index.space_units <= 12 * index.input_size

"""Unit tests for the nearest-neighbour indexes (Corollaries 4 and 7)."""

import pytest

from repro.core.baselines import l2_distance_squared, linf_distance
from repro.core.nn_l2 import L2NnIndex
from repro.core.nn_linf import LinfNnIndex
from repro.costmodel import CostCounter
from repro.errors import ValidationError

from helpers import duplicate_heavy_dataset, random_dataset


def brute_nearest(dataset, q, t, words, distance):
    matches = [o for o in dataset if o.contains_keywords(words)]
    matches.sort(key=lambda o: (distance(q, o.point), o.oid))
    return matches[:t]


class TestLinfNn:
    def test_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 90, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        for _ in range(12):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            t = rng.randint(1, 5)
            words = rng.sample(range(1, 6), 2)
            got = index.query(q, t, words)
            want = brute_nearest(ds, q, t, words, linf_distance)
            got_d = sorted(round(linf_distance(q, o.point), 9) for o in got)
            want_d = sorted(round(linf_distance(q, o.point), 9) for o in want)
            assert got_d == want_d

    def test_fewer_matches_than_t(self, rng):
        ds = random_dataset(rng, 40, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        words = rng.sample(range(1, 6), 2)
        total = len(ds.matching(words))
        got = index.query((5.0, 5.0), total + 10, words)
        assert len(got) == total

    def test_no_matches_at_all(self, rng):
        ds = random_dataset(rng, 30, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        assert index.query((5.0, 5.0), 3, [98, 99]) == []

    def test_t1_returns_nearest(self, rng):
        ds = random_dataset(rng, 60, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        for _ in range(10):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            words = rng.sample(range(1, 6), 2)
            got = index.query(q, 1, words)
            want = brute_nearest(ds, q, 1, words, linf_distance)
            if want:
                assert linf_distance(q, got[0].point) == pytest.approx(
                    linf_distance(q, want[0].point)
                )

    def test_degenerate_positions(self, rng):
        ds = duplicate_heavy_dataset(rng, 60)
        index = LinfNnIndex(ds, k=2)
        for _ in range(10):
            q = (rng.uniform(0, 4), rng.uniform(0, 4))
            t = rng.randint(1, 4)
            words = rng.sample(range(1, 7), 2)
            got = index.query(q, t, words)
            want = brute_nearest(ds, q, t, words, linf_distance)
            got_d = sorted(round(linf_distance(q, o.point), 9) for o in got)
            want_d = sorted(round(linf_distance(q, o.point), 9) for o in want)
            assert got_d == want_d

    def test_query_at_data_point(self, rng):
        ds = random_dataset(rng, 50, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        obj = ds.objects[0]
        words = sorted(obj.doc)[:2] if len(obj.doc) >= 2 else [1, 2]
        if len(words) == 2:
            got = index.query(obj.point, 1, words)
            if obj.contains_keywords(words):
                assert got and linf_distance(obj.point, got[0].point) == 0.0

    def test_validation(self, rng):
        ds = random_dataset(rng, 20, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        with pytest.raises(ValidationError):
            index.query((0.0,), 1, [1, 2])
        with pytest.raises(ValidationError):
            index.query((0.0, 0.0), 0, [1, 2])
        with pytest.raises(ValidationError):
            LinfNnIndex(ds, k=2, budget_factor=0.0)

    def test_counter_charged(self, rng):
        ds = random_dataset(rng, 60, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        counter = CostCounter()
        index.query((5.0, 5.0), 2, rng.sample(range(1, 6), 2), counter=counter)
        assert counter.total > 0

    def test_approx_l2_is_sqrt2_approximation(self, rng):
        """§1.1 remark: the L∞ answer approximates L2 within sqrt(d)."""
        import math

        ds = random_dataset(rng, 80, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        for _ in range(10):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            words = rng.sample(range(1, 6), 2)
            got = index.query_approx_l2(q, 1, words)
            matches = [o for o in ds if o.contains_keywords(words)]
            if not matches:
                assert got == []
                continue

            def l2(o):
                return math.sqrt(sum((a - b) ** 2 for a, b in zip(q, o.point)))

            optimal = min(l2(o) for o in matches)
            assert l2(got[0]) <= math.sqrt(2) * optimal + 1e-9

    def test_approx_l2_reranks_by_l2(self, rng):
        import math

        ds = random_dataset(rng, 80, vocabulary=5)
        index = LinfNnIndex(ds, k=2)
        q = (5.0, 5.0)
        words = rng.sample(range(1, 6), 2)
        got = index.query_approx_l2(q, 4, words)
        dists = [
            math.sqrt(sum((a - b) ** 2 for a, b in zip(q, o.point))) for o in got
        ]
        assert dists == sorted(dists)


class TestL2Nn:
    def test_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 70, vocabulary=5, integer_coords=True, coord_range=40)
        index = L2NnIndex(ds, k=2)
        for _ in range(10):
            q = (float(rng.randint(0, 40)), float(rng.randint(0, 40)))
            t = rng.randint(1, 4)
            words = rng.sample(range(1, 6), 2)
            got = index.query(q, t, words)
            want = brute_nearest(ds, q, t, words, l2_distance_squared)
            got_d = sorted(l2_distance_squared(q, o.point) for o in got)
            want_d = sorted(l2_distance_squared(q, o.point) for o in want)
            assert got_d == want_d

    def test_exact_integer_distances(self, rng):
        ds = random_dataset(rng, 50, vocabulary=5, integer_coords=True, coord_range=20)
        index = L2NnIndex(ds, k=2)
        q = (10.0, 10.0)
        words = rng.sample(range(1, 6), 2)
        got = index.query(q, 2, words)
        for obj in got:
            assert l2_distance_squared(q, obj.point) == int(
                l2_distance_squared(q, obj.point)
            )

    def test_fewer_matches_than_t(self, rng):
        ds = random_dataset(rng, 40, vocabulary=5, integer_coords=True, coord_range=20)
        index = L2NnIndex(ds, k=2)
        words = rng.sample(range(1, 6), 2)
        total = len(ds.matching(words))
        got = index.query((10.0, 10.0), total + 5, words)
        assert len(got) == total

    def test_non_integer_input_rejected(self, rng):
        ds = random_dataset(rng, 20, vocabulary=5)  # float coords
        with pytest.raises(ValidationError):
            L2NnIndex(ds, k=2)

    def test_non_integer_query_rejected(self, rng):
        ds = random_dataset(rng, 20, vocabulary=5, integer_coords=True)
        index = L2NnIndex(ds, k=2)
        with pytest.raises(ValidationError):
            index.query((0.5, 0.0), 1, [1, 2])


class TestLinfBackends:
    def test_dimred_backend_for_3d(self, rng):
        from repro.core.dim_reduction import DimReductionOrpKw

        ds = random_dataset(rng, 60, dim=3, vocabulary=5)
        index = LinfNnIndex(ds, k=2)  # auto -> dimension reduction
        assert isinstance(index._index, DimReductionOrpKw)
        for _ in range(6):
            q = tuple(rng.uniform(0, 10) for _ in range(3))
            t = rng.randint(1, 3)
            words = rng.sample(range(1, 6), 2)
            got = index.query(q, t, words)
            want = brute_nearest(ds, q, t, words, linf_distance)
            got_d = sorted(round(linf_distance(q, o.point), 9) for o in got)
            want_d = sorted(round(linf_distance(q, o.point), 9) for o in want)
            assert got_d == want_d

    def test_explicit_kd_backend_in_3d(self, rng):
        from repro.core.orp_kw import OrpKwIndex

        ds = random_dataset(rng, 50, dim=3, vocabulary=5)
        index = LinfNnIndex(ds, k=2, backend="kd")
        assert isinstance(index._index, OrpKwIndex)
        q = (5.0, 5.0, 5.0)
        words = rng.sample(range(1, 6), 2)
        got = index.query(q, 2, words)
        want = brute_nearest(ds, q, 2, words, linf_distance)
        assert len(got) == len(want)

    def test_unknown_backend_rejected(self, rng):
        from repro.errors import ValidationError as VE

        ds = random_dataset(rng, 20, vocabulary=5)
        with pytest.raises(VE):
            LinfNnIndex(ds, k=2, backend="quantum")

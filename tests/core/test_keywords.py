"""Unit tests for repro.core.keywords (large/small machinery)."""

from repro.core.keywords import large_small_split, node_weight, nonempty_combinations
from repro.dataset import KeywordObject


def obj(oid, doc, point=(0.0, 0.0)):
    return KeywordObject(oid=oid, point=point, doc=frozenset(doc))


class TestNodeWeight:
    def test_weight_is_doc_mass(self):
        objs = [obj(0, {1, 2}), obj(1, {3})]
        assert node_weight(objs) == 3

    def test_empty(self):
        assert node_weight([]) == 0


class TestLargeSmallSplit:
    def test_threshold_rule(self):
        # weight = 16, k = 2 -> threshold = 4.
        objs = [obj(i, {1, 2} if i < 4 else {2, 3}) for i in range(8)]
        large, materialized = large_small_split(objs, {1, 2, 3}, 16, 2)
        # counts: 1 -> 4, 2 -> 8, 3 -> 4; all >= 4 -> all large.
        assert large == {1, 2, 3}
        assert materialized == {}

    def test_small_keywords_materialized(self):
        objs = [obj(0, {1}), obj(1, {2}), *(obj(i, {3}) for i in range(2, 18))]
        weight = node_weight(objs)  # 18, threshold = sqrt(18) ~ 4.24
        large, materialized = large_small_split(objs, {1, 2, 3}, weight, 2)
        assert large == {3}
        assert set(materialized) == {1, 2}
        assert [o.oid for o in materialized[1]] == [0]

    def test_only_candidates_considered(self):
        objs = [obj(0, {1, 2})] * 1
        large, materialized = large_small_split(objs, {2}, 2, 2)
        assert 1 not in large and 1 not in materialized

    def test_absent_candidates_not_materialized(self):
        objs = [obj(0, {1})]
        large, materialized = large_small_split(objs, {1, 9}, 1, 2)
        assert 9 not in materialized

    def test_exact_boundary_weight_8_k_3(self):
        # N_u = 8, k = 3: threshold N_u^(1-1/k) = 4 exactly.  The float form
        # ``8 ** (2/3)`` rounds to 4.000000000000001, which misclassified a
        # 4-member list (exactly at the paper's >= threshold) as small.
        objs = [obj(i, {1} if i < 4 else {2}) for i in range(8)]
        large, materialized = large_small_split(objs, {1, 2}, 8, 3)
        assert large == {1, 2}
        assert materialized == {}

    def test_exact_boundary_weight_9_k_2(self):
        # N_u = 9, k = 2: threshold = 3 exactly; a 3-member list is large,
        # a 2-member list is small.
        objs = [
            *(obj(i, {1}) for i in range(3)),
            *(obj(i, {2}) for i in range(3, 5)),
            *(obj(i, {3}) for i in range(5, 9)),
        ]
        large, materialized = large_small_split(objs, {1, 2, 3}, 9, 2)
        assert 1 in large
        assert 3 in large
        assert set(materialized) == {2}

    def test_one_below_boundary_is_small(self):
        # N_u = 16, k = 2: threshold = 4; a 3-member list is strictly small.
        objs = [
            *(obj(i, {1}) for i in range(3)),
            *(obj(i, {2}) for i in range(3, 16)),
        ]
        large, materialized = large_small_split(objs, {1, 2}, 16, 2)
        assert large == {2}
        assert set(materialized) == {1}

    def test_zero_weight_has_no_large_keywords(self):
        # At most N_u^(1/k) = 0 keywords may be large at an empty node; the
        # old float threshold 0.0 made every present keyword large.
        large, materialized = large_small_split([], {1, 2}, 0, 2)
        assert large == set()
        assert materialized == {}

    def test_at_most_weight_pow_1_over_k_large(self, rng):
        objs = [
            obj(i, rng.sample(range(1, 30), rng.randint(1, 4)))
            for i in range(200)
        ]
        weight = node_weight(objs)
        large, _ = large_small_split(objs, set(range(1, 30)), weight, 2)
        assert len(large) <= weight ** 0.5 + 1


class TestNonemptyCombinations:
    def test_pairs(self):
        objs = [obj(0, {1, 2}), obj(1, {2, 3}), obj(2, {4})]
        combos = nonempty_combinations(objs, {1, 2, 3, 4}, 2)
        assert combos == {(1, 2), (2, 3)}

    def test_respects_large_filter(self):
        objs = [obj(0, {1, 2, 3})]
        combos = nonempty_combinations(objs, {1, 3}, 2)
        assert combos == {(1, 3)}

    def test_triples(self):
        objs = [obj(0, {1, 2, 3, 4})]
        combos = nonempty_combinations(objs, {1, 2, 3, 4}, 3)
        assert (1, 2, 3) in combos and len(combos) == 4

    def test_combo_iff_shared_object(self, rng):
        objs = [
            obj(i, rng.sample(range(1, 10), rng.randint(1, 4)))
            for i in range(40)
        ]
        large = set(range(1, 10))
        combos = nonempty_combinations(objs, large, 2)
        for a in range(1, 10):
            for b in range(a + 1, 10):
                shared = any({a, b} <= o.doc for o in objs)
                assert ((a, b) in combos) == shared

"""CFG builder tests: exact edge sets for the seeded control-flow shapes.

Every test pins the *entire* edge set — labels are ``L<lineno>`` (plus an
``x<N>`` suffix for duplicated ``finally`` copies), so an accidental extra
or missing edge anywhere in the builder fails loudly.
"""

import ast

from repro.analysis.cfg import (
    EXCEPTIONAL_KINDS,
    build_cfg,
    reaching_definitions,
)


def cfg_of(src):
    return build_cfg(ast.parse(src).body[0])


def test_try_finally_edges():
    """The finally suite is duplicated per provenance: a normal copy, an
    exceptional re-raising copy (x1), and one copy per return (x2)."""
    cfg = cfg_of(
        """
def f(xs):
    acc = 0
    try:
        acc = risky(xs)
        return acc
    finally:
        cleanup()
"""
    )
    assert cfg.edges() == {
        ("entry", "L3", "next"),
        ("L3", "L5", "next"),
        ("L5", "L6", "next"),
        ("L5", "L8x1", "except"),
        ("L6", "L8x1", "except"),
        ("L6", "L8x2", "return"),
        ("L8", "exit", "next"),
        ("L8x1", "exit", "raise"),
        ("L8x2", "exit", "return"),
    }


def test_early_return_edges():
    cfg = cfg_of(
        """
def g(x):
    if x < 0:
        return -1
    y = x + 1
    return y
"""
    )
    assert cfg.edges() == {
        ("entry", "L3", "next"),
        ("L3", "L4", "true"),
        ("L3", "L5", "false"),
        ("L4", "exit", "return"),
        ("L5", "L6", "next"),
        ("L6", "exit", "return"),
    }


def test_while_else_with_break_edges():
    """break jumps past the else suite; normal exhaustion runs it."""
    cfg = cfg_of(
        """
def h(xs):
    while xs:
        x = xs.pop()
        if x:
            break
    else:
        fallback()
    done()
"""
    )
    assert cfg.edges() == {
        ("entry", "L3", "next"),
        ("L3", "L4", "true"),
        ("L3", "L8", "false"),
        ("L4", "L5", "next"),
        ("L5", "L6", "true"),
        ("L5", "L3", "back"),
        ("L6", "L9", "break"),
        ("L8", "L9", "next"),
        ("L9", "exit", "next"),
    }


def test_nested_with_edges():
    cfg = cfg_of(
        """
def w(a, b):
    with open(a) as fa:
        with open(b) as fb:
            copy(fa, fb)
    finish()
"""
    )
    assert cfg.edges() == {
        ("entry", "L3", "next"),
        ("L3", "L4", "next"),
        ("L4", "L5", "next"),
        ("L5", "L6", "next"),
        ("L6", "exit", "next"),
    }


def test_path_queries_respect_avoided_nodes_and_kinds():
    cfg = cfg_of(
        """
def f(x):
    built = make(x)
    if x:
        publish(built)
    return built
"""
    )
    by_label = {node.label: node for node in cfg.nodes}
    publish = by_label["L5"]
    build = by_label["L3"]
    # The false branch bypasses the publish statement entirely.
    assert cfg.path_exists(build, cfg.exit, avoid_nodes=[publish])
    # ...but every path still flows through the branch header.
    assert not cfg.path_exists(build, cfg.exit, avoid_nodes=[by_label["L4"]])


def test_exceptional_kinds_can_be_masked_out():
    cfg = cfg_of(
        """
def f(x):
    if x:
        raise ValueError(x)
    return x
"""
    )
    by_label = {node.label: node for node in cfg.nodes}
    raiser = by_label["L4"]
    # The raise reaches the exit — but only over an exceptional edge.
    assert cfg.path_exists(raiser, cfg.exit)
    assert not cfg.path_exists(raiser, cfg.exit, avoid_kinds=EXCEPTIONAL_KINDS)


def test_reaching_definitions_kill_and_merge():
    cfg = cfg_of(
        """
def f(x):
    v = 1
    if x:
        v = 2
    use(v)
"""
    )
    by_label = {node.label: node for node in cfg.nodes}
    use = by_label["L6"]
    defs = reaching_definitions(cfg)[use.index]
    reaching_v = {idx for name, idx in defs if name == "v"}
    # Both the initial def and the branch redef may reach the use...
    assert reaching_v == {by_label["L3"].index, by_label["L5"].index}


def test_reaching_definitions_tracks_attribute_chains():
    cfg = cfg_of(
        """
def f(self):
    self.count = 0
    self.count = 1
    use(self.count)
"""
    )
    by_label = {node.label: node for node in cfg.nodes}
    use = by_label["L5"]
    defs = reaching_definitions(cfg)[use.index]
    reaching = {idx for name, idx in defs if name == "self.count"}
    # The second assignment kills the first.
    assert reaching == {by_label["L4"].index}

"""Suppression-tokenizer tests: logical-line continuations, standalone
comments, string-literal false markers, and rationale stripping."""

import textwrap

from repro.analysis.source import _parse_suppressions


def parse(src):
    return _parse_suppressions(textwrap.dedent(src))


def test_trailing_comment_tags_its_own_line():
    tags = parse(
        """\
        x = 1
        y = items  # reprolint: r3
        z = 3
        """
    )
    assert tags == {2: {"r3"}}


def test_continuation_comment_covers_the_whole_logical_line():
    """A tag on any physical line of a parenthesized continuation applies
    to every line the logical line spans — so a finding anchored on the
    opening line is silenced by a tag near the closing paren."""
    tags = parse(
        """\
        result = combine(
            first,
            second,  # reprolint: r1
        )
        after = 1
        """
    )
    assert tags == {
        1: {"r1"},
        2: {"r1"},
        3: {"r1"},
        4: {"r1"},
    }
    assert 5 not in tags


def test_comment_on_closing_paren_line():
    tags = parse(
        """\
        value = f(
            a,
        )  # reprolint: exact
        """
    )
    assert set(tags) == {1, 2, 3}
    assert tags[1] == {"exact"}


def test_standalone_comment_applies_to_its_own_line_only():
    tags = parse(
        """\
        # reprolint: ignore
        x = compute()
        """
    )
    assert tags == {1: {"ignore"}}


def test_multiple_tags_and_rationale():
    tags = parse(
        """\
        return self.items  # reprolint: r3, exact -- documented zero-copy
        """
    )
    assert tags == {1: {"r3", "exact"}}


def test_marker_inside_string_literal_is_not_a_suppression():
    tags = parse(
        """\
        doc = "use # reprolint: ignore to silence a line"
        """
    )
    assert tags == {}


def test_two_logical_lines_do_not_bleed_tags():
    tags = parse(
        """\
        a = f(
            1,
        )  # reprolint: r1
        b = g(
            2,
        )
        """
    )
    assert set(tags) == {1, 2, 3}


def test_unterminated_source_does_not_crash():
    # TokenError path: ast.parse reports the syntax error elsewhere.
    assert parse("x = (1,\n") == {}

"""Baseline workflow tests: write, load, match, stale and dangling
detection."""

import json

import pytest

from repro.analysis import (
    dangling_entries,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.findings import Finding
from repro.errors import ValidationError


def _finding(path="pkg/mod.py", line=10, rule="R3", message="leak"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


def test_roundtrip_and_matching(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    old = _finding()
    write_baseline(baseline_path, [old])

    accepted = load_baseline(baseline_path)
    assert accepted == {("pkg/mod.py", "R3", "leak")}

    # same finding on a different line still matches (movement-proof keys)
    moved = _finding(line=99)
    fresh = _finding(path="pkg/other.py", rule="R1", message="uncharged")
    parts = split_findings([moved, fresh], accepted)
    assert parts["baselined"] == [moved]
    assert parts["new"] == [fresh]
    assert parts["stale"] == []


def test_stale_entries_reported(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [_finding(), _finding(message="gone")])
    accepted = load_baseline(baseline_path)

    parts = split_findings([_finding()], accepted)
    assert parts["stale"] == [("pkg/mod.py", "R3", "gone")]


def test_dangling_entries_require_a_missing_file(tmp_path):
    """Stale-but-present files are drift (exit 0); missing files are
    dangling (the runner gates on them)."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    stale = [
        ("pkg/mod.py", "R3", "fixed finding, file still exists"),
        ("pkg/deleted.py", "R3", "file is gone"),
    ]
    assert dangling_entries(stale, tmp_path) == [
        ("pkg/deleted.py", "R3", "file is gone")
    ]
    assert dangling_entries([], tmp_path) == []


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_malformed_baseline_rejected(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json")
    with pytest.raises(ValidationError):
        load_baseline(bad)
    bad.write_text(json.dumps({"wrong": 1}))
    with pytest.raises(ValidationError):
        load_baseline(bad)
    bad.write_text(json.dumps({"findings": [{"path": "x"}]}))
    with pytest.raises(ValidationError):
        load_baseline(bad)

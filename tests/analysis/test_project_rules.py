"""Project-rule tests against the real tree: the R9 seeded-mutation drill
and the differential regressions pinning tree fixes made under R7-R10.
"""

import shutil
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.rules import select_rules
from repro.costmodel import CostCounter
from repro.core.dynamic import DynamicOrpKw
from repro.geometry.rectangles import Rect
from repro.trace.span import Tracer

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

#: The files participating in the keyword-intersection parity family.
PARITY_FILES = [
    "repro/core/baselines.py",
    "repro/ksi/inverted.py",
    "repro/fast/arrays.py",
    "repro/fast/backend.py",
]


def _copy_parity_sandbox(tmp_path):
    for rel in PARITY_FILES:
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(SRC / rel, dst)
    return tmp_path


class TestSeededMutation:
    def test_unmutated_sandbox_is_parity_clean(self, tmp_path):
        sandbox = _copy_parity_sandbox(tmp_path)
        findings = analyze_paths(
            [sandbox], root=sandbox, rules=select_rules(["R9"])
        )
        assert findings == []

    def test_deleting_one_batch_charge_yields_exactly_one_finding(self, tmp_path):
        """The acceptance drill: drop the structure_probes batch charge from
        ArrayStore.intersect and R9 must report exactly one finding naming
        the now-unmirrored category."""
        sandbox = _copy_parity_sandbox(tmp_path)
        arrays = sandbox / "repro/fast/arrays.py"
        text = arrays.read_text()
        target = 'counter.charge("structure_probes", live)'
        assert target in text, "seeded-mutation target moved; update the drill"
        arrays.write_text(
            "\n".join(
                line
                for line in text.splitlines()
                if target not in line
            )
            + "\n"
        )

        findings = analyze_paths(
            [sandbox], root=sandbox, rules=select_rules(["R9"])
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule == "R9"
        assert "'structure_probes'" in finding.message
        assert finding.path.endswith("fast/backend.py")


class TestTreeRegressions:
    """Differential pins for true positives fixed in this PR: each assertion
    fails on the pre-fix code."""

    def test_dynamic_module_is_span_clean(self):
        findings = analyze_paths(
            [SRC / "repro/core/dynamic.py"],
            root=REPO_ROOT,
            rules=select_rules(["R10"]),
        )
        assert findings == []

    def test_epoch_query_charges_inside_a_span(self):
        """Runtime side of the same fix: with a tracer attached, the epoch
        scan's structure probes land in a dedicated 'epoch-scan' span
        instead of leaking into the caller's accounting."""
        index = DynamicOrpKw(k=2, dim=2)
        index.insert_many(
            [(0.1, 0.1), (0.5, 0.5), (0.9, 0.9)],
            [{1, 2}, {1, 3}, {2, 3}],
        )
        counter = CostCounter()
        tracer = Tracer()
        counter.tracer = tracer
        tracer.push("query", "test")
        try:
            index.query(Rect((0.0, 0.0), (1.0, 1.0)), [1, 2], counter)
        finally:
            counter.tracer = None
        root = tracer.finish()

        def spans(span):
            yield span
            for child in span.children:
                yield from spans(child)

        epoch_spans = [s for s in spans(root) if s.name == "epoch-scan"]
        assert epoch_spans, "Epoch.query must open an epoch-scan span"
        assert all(s.component == "dynamic" for s in epoch_spans)
        # Direct charges materialize as a "(self)" leaf at finish(); sum the
        # whole epoch-scan subtree to see them.
        probes = sum(
            sub.costs.get("structure_probes", 0)
            for top in epoch_spans
            for sub in spans(top)
        )
        assert probes > 0

"""Runner/CLI tests: exit codes, formats, PARSE findings, and the
live-tree guarantee that the shipped codebase is clean against its
committed baseline."""

import json
from pathlib import Path

from repro.analysis import analyze_paths, main
from repro.analysis.baseline import load_baseline, split_findings

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLiveTreeClean:
    def test_src_has_no_new_findings(self):
        """The shipped tree stays reprolint-clean modulo the committed
        baseline — the same gate CI applies."""
        findings = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
            root=REPO_ROOT,
        )
        accepted = load_baseline(REPO_ROOT / "analysis" / "baseline.json")
        parts = split_findings(findings, accepted)
        assert parts["new"] == [], "\n".join(f.render() for f in parts["new"])

    def test_committed_baseline_has_no_stale_entries(self):
        findings = analyze_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        accepted = load_baseline(REPO_ROOT / "analysis" / "baseline.json")
        assert split_findings(findings, accepted)["stale"] == []


class TestMainExitCodes:
    def _bad_file(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def values(self):\n"
            "        return self.items\n"
        )
        return target

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert main([str(clean), "--root", str(tmp_path), "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_findings_exit_one_with_ruff_style_lines(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        assert main([str(target), "--root", str(tmp_path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("bad.py:5:9 R3 ")

    def test_json_format(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        code = main(
            [str(target), "--root", str(tmp_path), "--no-baseline", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["summary"] == {
            "total": 1, "new": 1, "baselined": 0, "stale": 0, "dangling": 0,
        }
        assert payload["new"][0]["rule"] == "R3"
        assert payload["new"][0]["severity"] == "error"

    def test_sarif_format(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        code = main(
            [str(target), "--root", str(tmp_path), "--no-baseline",
             "--format", "sarif"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert any(rule["id"] == "R3" for rule in run["tool"]["driver"]["rules"])
        (result,) = run["results"]
        assert result["ruleId"] == "R3"
        assert result["level"] == "error"
        assert result["baselineState"] == "new"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "bad.py"
        assert location["region"] == {"startLine": 5, "startColumn": 9}

    def test_write_then_gate_with_baseline(self, tmp_path, capsys):
        target = self._bad_file(tmp_path)
        args = [str(target), "--root", str(tmp_path), "--baseline", "bl.json"]
        assert main(args + ["--write-baseline"]) == 0
        capsys.readouterr()
        # the recorded finding no longer fails the run
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "1 baselined" in err
        # fixing the bug surfaces the entry as stale, still exit 0
        target.write_text("x = 1\n")
        assert main(args) == 0
        assert "1 stale" in capsys.readouterr().err

    def test_dangling_baseline_entry_fails_the_gate(self, tmp_path, capsys):
        """A baseline entry whose file was deleted gates CI (exit 1): the
        baseline no longer describes the tree and must be regenerated."""
        target = self._bad_file(tmp_path)
        other = tmp_path / "ok.py"
        other.write_text("x = 1\n")
        args = ["--root", str(tmp_path), "--baseline", "bl.json"]
        assert main([str(target), str(other)] + args + ["--write-baseline"]) == 0
        target.unlink()
        capsys.readouterr()
        assert main([str(other)] + args) == 1
        err = capsys.readouterr().err
        assert "file missing" in err
        # the JSON report names the dangling entries explicitly
        assert main([str(other)] + args + ["--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["dangling"] == 1
        assert payload["dangling_baseline_entries"][0][0] == "bad.py"

    def test_unparseable_file_is_a_parse_finding(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main([str(target), "--root", str(tmp_path), "--no-baseline"]) == 1
        assert "PARSE" in capsys.readouterr().out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--rules", "R99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_new_family_smoke_run_is_clean(self):
        """The CI smoke step: R7-R10 over the live tree gate at exit 0."""
        assert (
            main(
                [
                    str(REPO_ROOT / "src"),
                    "--root",
                    str(REPO_ROOT),
                    "--rules",
                    "R7,R8,R9,R10",
                ]
            )
            == 0
        )


class TestCliSubcommand:
    def test_repro_cli_lint_delegates(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        code = cli_main(
            ["lint", str(clean), "--root", str(tmp_path), "--no-baseline"]
        )
        assert code == 0
        assert "reprolint" in capsys.readouterr().err

"""Fixture tests: every rule flags its known positives and nothing else.

Each fixture file under ``fixtures/`` marks its expected findings with a
trailing ``# EXPECT <RULE>`` comment on the line the rule reports (the
``def`` line for method-level rules, the offending expression otherwise).
The test runs the single rule over the file with scope disabled and asserts
the flagged line set equals the marked line set exactly — so both false
negatives *and* false positives fail.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import RULES_BY_ID, analyze_paths
from repro.analysis.rules import select_rules

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT_RE = re.compile(r"#\s*EXPECT\s+(R\d+)\b")

CASES = [
    ("R1", "r1_traversal.py"),
    ("R2", "r2_mutate.py"),
    ("R3", "r3_escape.py"),
    ("R4", "r4_float_eq.py"),
    ("R5", "r5_wallclock.py"),
    ("R6", "r6_rng.py"),
    ("R7", "r7_publish.py"),
    ("R8", "r8_await.py"),
    ("R10", "r10_span.py"),
]

#: Directory fixtures for the cross-module rule: R9 needs a core/ and a
#: fast/ side in one analysis run, so each case is a mini source tree.
DIR_CASES = [
    ("R9", "r9_parity_pos"),
    ("R9", "r9_parity_neg"),
]


def expected_lines(path: Path, rule_id: str):
    lines = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if match and match.group(1) == rule_id:
            lines.add(lineno)
    return lines


@pytest.mark.parametrize("rule_id,filename", CASES)
def test_rule_flags_exactly_the_marked_lines(rule_id, filename):
    path = FIXTURES / filename
    expected = expected_lines(path, rule_id)
    assert expected, f"{filename} must contain at least one EXPECT {rule_id}"

    findings = analyze_paths(
        [path],
        root=FIXTURES,
        rules=select_rules([rule_id]),
        respect_scope=False,  # R4/R5/R6 are path-scoped; fixtures live in tests/
    )
    assert {f.rule for f in findings} <= {rule_id}
    assert {f.line for f in findings} == expected


@pytest.mark.parametrize("rule_id,filename", CASES)
def test_scoped_rules_skip_fixtures_by_default(rule_id, filename):
    """With scope respected, R4/R5/R6 must not fire outside their packages."""
    rule = RULES_BY_ID[rule_id]
    if rule.scope is None:
        pytest.skip("rule is not path-scoped")
    findings = analyze_paths(
        [FIXTURES / filename], root=FIXTURES, rules=[rule], respect_scope=True
    )
    assert findings == []


def test_suppression_comments_honoured():
    """``# reprolint: r1`` / ``r3`` lines in the fixtures carry positives
    that the engine must swallow (they are not EXPECT-marked)."""
    for rule_id, filename in (("R1", "r1_traversal.py"), ("R3", "r3_escape.py")):
        path = FIXTURES / filename
        text = path.read_text()
        assert f"# reprolint: {rule_id.lower()}" in text
        findings = analyze_paths(
            [path],
            root=FIXTURES,
            rules=select_rules([rule_id]),
            respect_scope=False,
        )
        assert {f.line for f in findings} == expected_lines(path, rule_id)


@pytest.mark.parametrize("rule_id,dirname", DIR_CASES)
def test_project_rule_flags_exactly_the_marked_lines(rule_id, dirname):
    """R9 runs over a directory tree; expectations are per-file line sets."""
    tree = FIXTURES / dirname
    expected = set()
    for path in sorted(tree.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        expected |= {(rel, line) for line in expected_lines(path, rule_id)}
    if dirname.endswith("_pos"):
        assert expected, f"{dirname} must contain at least one EXPECT {rule_id}"

    findings = analyze_paths(
        [tree],
        root=FIXTURES,
        rules=select_rules([rule_id]),
        respect_scope=False,
    )
    assert {f.rule for f in findings} <= {rule_id}
    assert {(f.path, f.line) for f in findings} == expected


def test_unknown_rule_rejected():
    with pytest.raises(ValueError):
        select_rules(["R99"])

"""R4 fixture: exact float equality (geometry-scoped rule).

Lines carrying an ``EXPECT R4`` marker comment must be flagged.  Never imported.
"""


def bad_is_origin(point):
    return point[0] == 0.0 and point[1] == 0.0  # EXPECT R4


def bad_not_unit(x):
    if x != 1.0:  # EXPECT R4
        return True
    return False


def bad_cast_compare(a, b):
    return float(a) == b  # EXPECT R4


def good_tolerant(x):
    return abs(x) < 1e-9


def good_int_compare(n):
    # integer equality is exact; R4 only cares about float operands
    return n == 0


def good_opted_out(coeffs):
    return all(c == 0.0 for c in coeffs)  # reprolint: exact

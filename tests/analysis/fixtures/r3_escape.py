"""R3 fixture: public methods leaking mutable internal state.

Lines carrying an ``EXPECT R3`` marker comment must be flagged (R3 anchors
on the leaking ``return``).  Never imported.
"""


class BadContainer:
    def __init__(self):
        self.items = []
        self._postings = {}
        self._postings.setdefault("seed", []).append(0)  # dict-of-mutables
        self._cache = {}

    def all_items(self):
        return self.items  # EXPECT R3

    def posting(self, key):
        return self._postings.get(key, [])  # EXPECT R3

    def cached(self, key):
        self._cache.setdefault(key, []).append(key)
        return self._cache[key]  # EXPECT R3


class GoodContainer:
    def __init__(self):
        self.items = []
        self._postings = {}
        self.limit = 16

    def all_items(self):
        return list(self.items)

    def posting(self, key):
        return tuple(self._postings.get(key, ()))

    def count(self):
        # returning a scalar attribute is fine
        return self.limit

    def _internal_view(self):
        # private helpers may return internals; only the public API is gated
        return self.items


class SuppressedContainer:
    def __init__(self):
        self.items = []

    def all_items(self):
        return self.items  # reprolint: r3 -- documented zero-copy accessor

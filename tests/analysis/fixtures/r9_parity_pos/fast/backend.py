"""R9 positive, fast side: missing structure_probes, extra simd_lanes."""


class VectorizedBackend:
    def query_rect(self, query, counter):  # EXPECT R9
        counter.charge("comparisons", 1)
        counter.charge("simd_lanes", 4)
        return []

    def query_halfspaces(self, query, counter):
        counter.charge("comparisons", 1)
        return []

"""R9 positive: the scalar path charges a category the fast path never
mirrors (structure_probes), and the fast path charges one the scalar path
never mirrors (simd_lanes) — one finding per direction, anchored on the
entry point of the side that is *missing* the category."""


class KeywordsOnlyIndex:
    def query_predicate(self, query, counter):  # EXPECT R9
        for obj in self._objects:
            counter.charge("comparisons")
            counter.charge("structure_probes")
        return []

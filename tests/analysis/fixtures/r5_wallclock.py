"""R5 fixture: wall-clock reads in the cost path (core/... scoped rule).

Lines carrying an ``EXPECT R5`` marker comment must be flagged.  Never imported.
"""

import time
from time import perf_counter  # EXPECT R5


def bad_timed_query(index, rect):
    start = time.perf_counter()  # EXPECT R5
    result = index.query(rect)
    elapsed = time.time() - start  # EXPECT R5
    return result, elapsed


def bad_imported_clock():
    return perf_counter()


def good_charged_query(index, rect, counter):
    counter.charge("nodes_visited")
    return index.query(rect)


def good_strftime():
    # time.strftime is not a clock read; only the clock functions count
    return time.strftime("%Y")

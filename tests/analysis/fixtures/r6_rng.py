"""R6 fixture: unseeded randomness (workloads/benchmarks scoped rule).

Lines carrying an ``EXPECT R6`` marker comment must be flagged.  Never imported.
"""

import random


def bad_module_level_draw():
    return random.random()  # EXPECT R6


def bad_shuffle(items):
    random.shuffle(items)  # EXPECT R6
    return items


def bad_default_rng_instance():
    return random.Random()  # EXPECT R6


def good_seeded_instance():
    rng = random.Random(0xC0FFEE)
    return rng.random()


def good_injected(rng):
    # drawing from an injected generator is the sanctioned pattern
    return rng.randint(0, 10)


def good_explicit_seed_call():
    random.seed(7)

"""R8 fixtures: read-modify-write of shared state straddling an await.

Positives capture a ``self.*`` snapshot, suspend, then write the stale
value back; negatives either hold a lock across the region, recompute
after the await, or only touch locals.
"""


class Races:
    """Positive shapes."""

    async def bump(self):
        current = self._inflight
        await self._refresh()
        self._inflight = current + 1  # EXPECT R8

    async def inline(self):
        self._total = self._total + await self._delta()  # EXPECT R8

    async def aug(self):
        self._count += await self._delta()  # EXPECT R8

    async def branchy(self, request):
        snapshot = self._budget
        if request.heavy:
            await self._drain()
        self._budget = snapshot - request.cost  # EXPECT R8


class Guarded:
    """Negative shapes."""

    async def locked_bump(self):
        async with self._lock:
            current = self._inflight
            await self._refresh()
            self._inflight = current + 1

    async def recompute(self):
        await self._refresh()
        self._inflight = self._inflight + 1

    async def refreshed(self):
        current = self._inflight
        await self._refresh()
        current = self._poll()
        self._inflight = current + 1

    async def local_only(self):
        total = 0
        for item in self._items:
            total += await self._weight(item)
        self._last_total = total

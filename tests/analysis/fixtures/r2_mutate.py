"""R2 fixture: mutation before validation in update paths.

Lines carrying an ``EXPECT R2`` marker comment must be flagged (R2 anchors
on the first premature mutation).  Never imported.
"""


class ValidationError(Exception):
    pass


class BadUpdates:
    def __init__(self):
        self.items = []
        self.size = 0

    def insert(self, value):
        self.items.append(value)  # EXPECT R2
        if value < 0:
            raise ValidationError("negative value")

    def delete(self, key):
        self.size -= 1  # EXPECT R2
        self._check_key(key)
        del self.items[key]

    def _check_key(self, key):
        if key < 0:
            raise ValidationError("bad key")


class GoodUpdates:
    def __init__(self):
        self.items = []
        self.size = 0

    def insert(self, value):
        if value < 0:
            raise ValidationError("negative value")
        self.items.append(value)
        self.size += 1

    def delete(self, key):
        self._check_key(key)
        del self.items[key]
        self.size -= 1

    def insert_many(self, values):
        coerced = [self._coerce(v) for v in values]
        self.items.extend(coerced)

    def _coerce(self, value):
        if value < 0:
            raise ValidationError("negative value")
        return value

    def _check_key(self, key):
        if key < 0:
            raise ValidationError("bad key")

    def rename(self, label):
        # no validation at all: nothing to order against, R2 does not fire
        self.label = label

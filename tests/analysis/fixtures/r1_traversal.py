"""R1 fixture: uncharged traversal in a query path.

Lines carrying an ``EXPECT R1`` marker comment must be flagged (R1 anchors
on the traversal statement); everything else must not be.  Never imported —
parsed by the rule engine only.
"""


class BadTreeIndex:
    def query(self, node):
        out = []
        stack = [node]
        while stack:  # EXPECT R1
            cur = stack.pop()
            out.append(cur)
            stack.extend(cur.children)
        return out

    def search(self, node, target):
        if node is None:
            return None
        if node.key == target:
            return node
        return self.search(node.left, target) or self.search(  # EXPECT R1
            node.right, target
        )


class GoodTreeIndex:
    def query(self, node, counter):
        out = []
        stack = [node]
        while stack:
            counter.charge("nodes_visited")
            cur = stack.pop()
            out.append(cur)
            stack.extend(cur.children)
        return out

    def report(self, node, counter):
        # forwarding the counter to a callee also satisfies R1
        for child in node.children:
            self._walk(child, counter)
        return node

    def _walk(self, child, counter):
        counter.charge("nodes_visited")
        return child

    def summarize(self, node):
        # not a query/search/report/visit method: R1 does not apply
        total = 0
        for child in node.children:
            total += 1
        return total


class SuppressedTreeIndex:
    def query(self, node):
        out = []
        while node is not None:  # reprolint: r1 -- O(1): left spine length <= 2
            out.append(node)
            node = node.left
        return out

"""R9 negative: transitive scalar callee inside the core/ksi allowlist."""


class InvertedIndex:
    def matching_objects(self, words, counter):
        counter.charge("objects_examined")
        counter.charge("structure_probes")
        return []

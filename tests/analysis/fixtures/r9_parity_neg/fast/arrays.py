"""R9 negative: transitive fast callee inside the fast allowlist."""


class ArrayStore:
    def intersect(self, words, counter):
        counter.charge("objects_examined", 8)
        counter.charge("structure_probes", 8)
        return None

"""R9 negative, fast side: batch-granularity mirror of every scalar
category (comparisons directly, the rest via ArrayStore.intersect)."""


class VectorizedBackend:
    def query_rect(self, query, counter):
        counter.charge("comparisons", 1)
        return self.store.intersect(query.keywords, counter)

    def query_halfspaces(self, query, counter):
        counter.charge("comparisons", 1)
        return self.store.intersect(query.keywords, counter)

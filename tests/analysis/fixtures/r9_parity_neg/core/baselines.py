"""R9 negative, scalar side: categories match the fast side transitively
(structure_probes is charged by the inverted index this entry calls)."""


class KeywordsOnlyIndex:
    def query_predicate(self, query, counter):
        counter.charge("comparisons")
        return self._inverted.matching_objects(query.keywords, counter)

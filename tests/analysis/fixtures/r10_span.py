"""R10 fixtures: charges/merges outside spans, and leaky span pushes.

Coverage is lexical (``with span_for(...)`` / ``with tracer.span(...)`` /
``push`` + ``try/finally pop``) or one-level interprocedural (every call
site of the charging function is itself covered).
"""


class Uncovered:
    def scan(self, counter):
        counter.charge("structure_probes")  # EXPECT R10
        return 0


class CoveredLexically:
    def scan_rect(self, counter):
        with span_for(counter, "scan", "fixture"):
            counter.charge("comparisons")
        return 0

    def managed(self, tracer, counter):
        with tracer.span("shard", "fixture"):
            counter.charge("comparisons")


class CoveredViaCallers:
    def helper_charge(self, counter):
        counter.charge("objects_examined")

    def outer(self, counter):
        with span_for(counter, "outer", "fixture"):
            self.helper_charge(counter)


class MixedCallers:
    def charge_probe(self, counter):
        counter.charge("structure_probes")  # EXPECT R10

    def covered_path(self, counter):
        with span_for(counter, "covered", "fixture"):
            self.charge_probe(counter)

    def uncovered_path(self, counter):
        self.charge_probe(counter)


class Merges:
    def collect(self, spent, probe):
        spent.merge(probe)  # EXPECT R10

    def collect_in_span(self, counter, probe):
        with span_for(counter, "merge", "fixture"):
            counter.merge(probe)


class PushPop:
    def guarded(self, tracer, counter):
        tracer.push("query", "fixture")
        try:
            counter.charge("comparisons")
        finally:
            tracer.pop()

    def leaky(self, tracer):
        tracer.push("query", "fixture")  # EXPECT R10
        self._work()
        tracer.pop()

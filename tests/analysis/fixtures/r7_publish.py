"""R7 fixtures: epoch-publication atomicity in copy-on-write mutators.

A class is copy-on-write when it has a ``publish``-style method rebinding a
published attribute.  Mutators then must not touch published state in
place, must not publish twice on a path, and must publish on every
non-exceptional exit once they build new state.
"""


class InPlaceMutation:
    """Positive: mutators reach into the live epoch instead of copying."""

    def __init__(self):
        self._epoch = None

    def _publish(self, epoch):
        self._epoch = epoch

    def insert(self, item):
        self._epoch.items.append(item)  # EXPECT R7

    def update(self, version):
        self._epoch.version = version  # EXPECT R7

    def remove(self, key):
        del_marker = object()
        self._epoch.slots[key] = del_marker  # EXPECT R7


class DoublePublish:
    """Positive: one control-flow path installs two epochs."""

    def __init__(self):
        self._epoch = None

    def _publish(self, epoch):
        self._epoch = epoch

    def insert(self, item):
        epoch = self._merged(item)
        self._publish(epoch)
        self._publish(epoch)  # EXPECT R7


class LoopPublish:
    """Positive: publishing per iteration exposes every intermediate epoch."""

    def __init__(self):
        self._epoch = None

    def _publish(self, epoch):
        self._epoch = epoch

    def insert_many(self, items):
        for item in items:
            epoch = self._merged(item)
            self._publish(epoch)  # EXPECT R7


class ConditionalPublish:
    """Positive: a built epoch silently dropped on the false branch."""

    def __init__(self):
        self._epoch = None

    def _publish(self, epoch):
        self._epoch = epoch

    def insert(self, item):
        epoch = self._merged(item)  # EXPECT R7
        if item.priority:
            self._publish(epoch)


class CleanCopyOnWrite:
    """Negative: validate, build off to the side, publish exactly once."""

    def __init__(self):
        self._epoch = None
        self._index = {}

    def _publish(self, epoch):
        self._epoch = epoch

    def insert(self, item):
        if item is None:
            return
        epoch = self._merged(self._epoch, item)
        self._publish(epoch)

    def delete(self, oid):
        # Publication through a helper that itself publishes is still a
        # publication event (the DynamicOrpKw.delete -> _rebuild_all shape).
        if oid not in self._index:
            raise KeyError(oid)
        epoch = self._without(oid)
        self._rebuild(epoch)

    def _rebuild(self, epoch):
        self._publish(epoch)


class NotCopyOnWrite:
    """Negative: no publish method, so R7 never engages."""

    def __init__(self):
        self._items = []

    def insert(self, item):
        self._items.append(item)

"""Persistence of the serving layer: engine round-trips and format guards."""

import pickle
from pathlib import Path

import pytest

from repro.geometry.rectangles import Rect
from repro.errors import ValidationError
from repro.persist import FORMAT_VERSION, MAGIC, load_index, save_index
from repro.service import QueryEngine

from helpers import random_dataset


class TestEngineRoundTrip:
    def test_results_survive_save_load(self, rng, tmp_path):
        ds = random_dataset(rng, 120)
        engine = QueryEngine(ds, max_k=3, default_budget=256)
        queries = []
        for _ in range(8):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            queries.append((Rect((a, c), (b, d)), rng.sample(range(1, 9), 2)))
        want = [sorted(o.oid for o in r) for r in engine.batch(queries)]

        path = tmp_path / "engine.idx"
        save_index(engine, path)
        loaded = load_index(path, expected_class=QueryEngine)
        got = [sorted(o.oid for o in r) for r in loaded.batch(queries)]
        assert got == want

    def test_stats_and_cache_survive_save_load(self, rng, tmp_path):
        ds = random_dataset(rng, 80)
        engine = QueryEngine(ds, max_k=2, cache_size=16)
        rect = Rect((1.0, 1.0), (9.0, 9.0))
        engine.query(rect, [1, 2])
        path = tmp_path / "engine.idx"
        save_index(engine, path)

        loaded = load_index(path, expected_class=QueryEngine)
        assert loaded.stats()["queries"] == 1
        assert loaded.records[-1].query_id == 1
        # The warm cache travelled with the engine: same query is now a hit.
        loaded.query(rect, [2, 1])
        assert loaded.last_record.cache == "hit"

    def test_wrong_expected_class_rejected(self, rng, tmp_path):
        from repro.core.orp_kw import OrpKwIndex

        ds = random_dataset(rng, 40)
        path = tmp_path / "engine.idx"
        save_index(QueryEngine(ds, max_k=2), path)
        with pytest.raises(ValidationError):
            load_index(path, expected_class=OrpKwIndex)


class TestFormatVersionGuard:
    def test_future_format_version_rejected(self, rng, tmp_path):
        """A file written by a future library (format N+1) must be refused
        with the documented message, not mis-parsed."""
        ds = random_dataset(rng, 30)
        engine = QueryEngine(ds, max_k=2)
        future = FORMAT_VERSION + 1
        envelope = {
            "magic": MAGIC,
            "format": future,
            "library_version": "999.0.0",
            "index_class": "QueryEngine",
            "index": engine,
        }
        path = tmp_path / "future.idx"
        Path(path).write_bytes(pickle.dumps(envelope))
        with pytest.raises(ValidationError) as excinfo:
            load_index(path)
        message = str(excinfo.value)
        assert f"index file format {future} unsupported" in message
        assert f"this library reads format {FORMAT_VERSION}" in message

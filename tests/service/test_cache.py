"""Unit tests for repro.service.cache."""

import pytest

from repro.errors import ValidationError
from repro.service import LRUCache


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", [1])
        assert cache.get("a") == [1]
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_cached_empty_result_is_a_hit(self):
        cache = LRUCache(4)
        cache.put("empty", [])
        value, hit = cache.lookup("empty")
        assert hit and value == []

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            LRUCache(-1)

    def test_hit_rate_none_before_lookups(self):
        assert LRUCache(4).hit_rate is None

    def test_stats_shape(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.get("a")
        stats = cache.stats()
        assert stats == {
            "capacity": 3,
            "size": 1,
            "hits": 1,
            "misses": 0,
            "evictions": 0,
            "capacity_evictions": 0,
            "hit_rate": 1.0,
        }

    def test_resize_shrink_evicts_lru_separately(self):
        # Capacity-shrink evictions must not masquerade as insert-pressure
        # evictions: the two counters answer different capacity questions.
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # refresh a; b is now LRU
        cache.resize(1)
        assert cache.capacity == 1
        assert "a" in cache
        assert "b" not in cache and "c" not in cache
        assert cache.capacity_evictions == 2
        assert cache.evictions == 0

    def test_resize_to_zero_disables_caching(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.resize(0)
        assert len(cache) == 0
        assert cache.capacity_evictions == 1
        cache.put("b", 2)
        assert cache.get("b") is None

    def test_resize_grow_keeps_entries(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.resize(4)
        assert cache.get("a") == 1
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.evictions == 0
        assert cache.capacity_evictions == 0

    def test_resize_negative_rejected(self):
        with pytest.raises(ValidationError):
            LRUCache(2).resize(-1)

    def test_insert_pressure_eviction_not_counted_as_capacity(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.evictions == 1
        assert cache.capacity_evictions == 0

"""Unit tests for repro.service.sharding — partitioning and fan-out serving."""

import json

import pytest

from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.persist import load_index, save_index
from repro.service import QueryEngine, ShardedQueryEngine, partition_dataset

from helpers import random_dataset


def _brute(ds, rect, words):
    return sorted(
        o.oid
        for o in ds
        if rect.contains_point(o.point) and o.contains_keywords(words)
    )


class TestPartition:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7, 13])
    def test_partition_is_balanced_and_exhaustive(self, rng, shards):
        ds = random_dataset(rng, 150)
        pieces = partition_dataset(ds, shards)
        assert len(pieces) == shards
        sizes = [len(piece) for piece in pieces]
        assert sum(sizes) == len(ds)
        assert max(sizes) - min(sizes) <= 1
        oids = sorted(o.oid for piece in pieces for o in piece.objects)
        assert oids == sorted(o.oid for o in ds)

    def test_shards_are_spatially_coherent(self, rng):
        """The first cut is a median x-split: shard halves are separated."""
        ds = random_dataset(rng, 100)
        left, right = partition_dataset(ds, 2)
        max_left = max(o.point[0] for o in left.objects)
        min_right = min(o.point[0] for o in right.objects)
        assert max_left <= min_right

    def test_more_shards_than_objects(self, rng):
        ds = random_dataset(rng, 3)
        pieces = partition_dataset(ds, 7)
        assert len(pieces) == 7
        assert sum(len(piece) for piece in pieces) == 3
        # Surplus shards are explicitly empty datasets, not errors.
        for piece in pieces:
            assert piece.dim == ds.dim

    def test_bad_shard_count_rejected(self, rng):
        with pytest.raises(ValidationError):
            partition_dataset(random_dataset(rng, 10), 0)


class TestShardedServing:
    def test_exact_answers_and_merged_order(self, rng):
        ds = random_dataset(rng, 150)
        engine = ShardedQueryEngine(ds, shards=4, max_k=3)
        for _ in range(15):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            got = engine.query(rect, words)
            assert isinstance(got, tuple)
            assert [o.oid for o in got] == _brute(ds, rect, words)

    def test_trace_cost_equals_sum_of_slices(self, rng):
        ds = random_dataset(rng, 120)
        engine = ShardedQueryEngine(ds, shards=3, max_k=2, cache_size=0)
        engine.query(Rect.full(2), [1, 2], budget=64)
        record = engine.last_record
        assert len(record.shards) == 3
        assert record.cost["total"] == sum(s["cost"] for s in record.shards)
        for slice_ in record.shards:
            assert set(slice_) == {"shard_id", "strategy", "budget", "cost", "degraded"}

    def test_caller_counter_receives_merged_spend_once(self, rng):
        ds = random_dataset(rng, 120)
        engine = ShardedQueryEngine(ds, shards=4, max_k=2, cache_size=0)
        counter = CostCounter()
        engine.query(Rect.full(2), [1, 2], budget=64, counter=counter)
        assert counter.total == engine.last_record.cost["total"]

    def test_budgeted_caller_counter_never_raises(self, rng):
        """Same invariant as the unsharded engine: a blown caller budget
        must not lose the merged trace or the cache entry."""
        ds = random_dataset(rng, 120)
        engine = ShardedQueryEngine(ds, shards=4, max_k=2, cache_size=16)
        counter = CostCounter(budget=1)
        engine.query(Rect.full(2), [1, 2], counter=counter)
        assert engine.last_record.cache == "miss"
        assert counter.total == engine.last_record.cost["total"]
        engine.query(Rect.full(2), [1, 2])
        assert engine.last_record.cache == "hit"

    def test_unused_budget_redistributes_to_stragglers(self, rng):
        """Later shards' shares grow when earlier shards underspend."""
        ds = random_dataset(rng, 200)
        engine = ShardedQueryEngine(ds, shards=4, max_k=2, cache_size=0)
        # A sliver rectangle: most shards are cheap misses, so the pool
        # carries their unused units forward.
        engine.query(Rect((9.5, 9.5), (10.0, 10.0)), [1, 2], budget=100)
        slices = engine.last_record.shards
        base = 100 // 4
        assert slices[0]["budget"] == base
        assert any(s["budget"] > base for s in slices[1:])

    def test_degradation_stays_per_slice(self, rng):
        """A starved fan-out degrades shard slices, not strategies globally;
        answers stay exact and no exception escapes."""
        ds = random_dataset(rng, 200)
        engine = ShardedQueryEngine(ds, shards=4, max_k=2, cache_size=0)
        rect = Rect.full(2)
        got = engine.query(rect, [1, 2], budget=4)  # 1 unit per shard
        record = engine.last_record
        assert record.degraded
        assert any(s["degraded"] for s in record.shards)
        assert [o.oid for o in got] == _brute(ds, rect, [1, 2])
        stats = engine.stats()
        assert stats["degraded"] == 1
        assert stats["degraded_slices"] == sum(
            1 for s in record.shards if s["degraded"]
        )

    def test_shard_fallbacks_tagged_and_rolled_up(self, rng):
        ds = random_dataset(rng, 300)
        engine = ShardedQueryEngine(ds, shards=2, max_k=2, cache_size=0)
        engine.query(Rect.full(2), [1, 2], budget=10)
        record = engine.last_record
        assert record.fallbacks
        for fallback in record.fallbacks:
            assert fallback["shard"] in (0, 1)
            assert {"strategy", "spent", "budget"} <= set(fallback)

    def test_record_json_round_trips_with_shards(self, rng):
        ds = random_dataset(rng, 80)
        engine = ShardedQueryEngine(ds, shards=2, max_k=2, default_budget=64)
        engine.query(Rect((2.0, 2.0), (8.0, 8.0)), [1, 2])
        payload = json.loads(engine.last_record.to_json())
        assert payload["strategy"] == "sharded"
        assert len(payload["shards"]) == 2
        json.dumps(engine.stats())  # JSON-safe throughout

    def test_validation_matches_unsharded_engine(self, rng):
        engine = ShardedQueryEngine(random_dataset(rng, 40), shards=2, max_k=2)
        with pytest.raises(ValidationError):
            engine.query(Rect.full(2), [])
        with pytest.raises(ValidationError):
            engine.query(Rect.full(2), [1, 2, 3])
        with pytest.raises(ValidationError):
            engine.query(Rect.full(3), [1, 2])
        with pytest.raises(ValidationError):
            engine.query([float("inf"), 0.0, 1.0, 1.0], [1])
        with pytest.raises(ValidationError):
            ShardedQueryEngine(random_dataset(rng, 10), shards=0)

    def test_empty_dataset_served(self):
        engine = ShardedQueryEngine(Dataset.empty(2), shards=3, max_k=2)
        assert engine.query(Rect.full(2), [1]) == ()
        assert engine.last_record.cost.get("total", 0) == 0

    def test_space_units_aggregate_shards(self, rng):
        ds = random_dataset(rng, 100)
        engine = ShardedQueryEngine(ds, shards=4, max_k=2)
        assert engine.space_units == sum(
            shard.space_units for shard in engine.shard_engines
        )
        assert engine.input_size == ds.total_doc_size
        assert engine.dim == 2


class TestPersistence:
    def test_sharded_engine_round_trips(self, rng, tmp_path):
        ds = random_dataset(rng, 100)
        engine = ShardedQueryEngine(ds, shards=3, max_k=2, cache_size=16)
        rect = Rect((1.0, 1.0), (9.0, 9.0))
        want = [o.oid for o in engine.query(rect, [1, 2])]
        path = tmp_path / "sharded.idx"
        save_index(engine, path)
        loaded = load_index(path, expected_class=ShardedQueryEngine)
        assert [o.oid for o in loaded.query(rect, [2, 1])] == want
        assert loaded.last_record.cache == "hit"  # warm cache travelled

    def test_tuple_expected_class_accepts_either_engine(self, rng, tmp_path):
        ds = random_dataset(rng, 60)
        path = tmp_path / "either.idx"
        save_index(ShardedQueryEngine(ds, shards=2, max_k=2), path)
        loaded = load_index(path, expected_class=(QueryEngine, ShardedQueryEngine))
        assert isinstance(loaded, ShardedQueryEngine)
        with pytest.raises(ValidationError) as excinfo:
            load_index(path, expected_class=(QueryEngine,))
        assert "QueryEngine" in str(excinfo.value)

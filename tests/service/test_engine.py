"""Unit tests for repro.service.engine — the budget-bounded serving layer."""

import json

import pytest

from repro.costmodel import CostCounter
from repro.dataset import Dataset
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine

from helpers import random_dataset


def _random_queries(rng, count, max_k=3, vocabulary=8):
    queries = []
    for _ in range(count):
        a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
        c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
        rect = Rect((a, c), (b, d))
        words = rng.sample(range(1, vocabulary + 1), rng.randint(1, max_k))
        queries.append((rect, words))
    return queries


class TestCorrectness:
    def test_agrees_with_brute_force_all_ks(self, rng):
        ds = random_dataset(rng, 150)
        engine = QueryEngine(ds, max_k=3)
        for rect, words in _random_queries(rng, 25):
            got = sorted(o.oid for o in engine.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want, words

    def test_exact_under_tight_budget(self, rng):
        """Fallbacks and degradation never change the answer."""
        ds = random_dataset(rng, 200)
        engine = QueryEngine(ds, max_k=3, default_budget=10, cache_size=0)
        for rect, words in _random_queries(rng, 20):
            got = sorted(o.oid for o in engine.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want, words

    def test_keyword_order_and_duplicates_normalized(self, rng):
        ds = random_dataset(rng, 80)
        engine = QueryEngine(ds, max_k=2)
        rect = Rect((1.0, 1.0), (9.0, 9.0))
        a = engine.query(rect, [1, 2])
        b = engine.query(rect, [2, 1, 2])
        assert [o.oid for o in a] == [o.oid for o in b]
        # The second call must be a cache hit: same normalized key.
        assert engine.last_record.cache == "hit"


class TestBudgetAndFallback:
    def test_tight_budget_never_raises(self, rng):
        """Acceptance demo: a batch under a tight budget completes with zero
        raised BudgetExceeded — blow-ups appear only as recorded fallbacks."""
        ds = random_dataset(rng, 300)
        engine = QueryEngine(ds, max_k=3, cache_size=0)
        queries = _random_queries(rng, 30)
        engine.batch(queries, budget=8)  # absurdly tight: everything degrades
        traces = engine.records
        assert len(traces) == 30
        assert sum(len(t.fallbacks) for t in traces) > 0
        for t in traces:
            if t.fallbacks and not t.degraded:
                # Served by a later strategy that fit the budget.
                assert t.strategy not in [f["strategy"] for f in t.fallbacks]

    def test_fallback_recorded_with_spent_units(self, rng):
        ds = random_dataset(rng, 300)
        engine = QueryEngine(ds, max_k=2, cache_size=0)
        engine.query(Rect.full(2), [1, 2], budget=5)
        record = engine.last_record
        assert record.fallbacks, "a 5-unit budget must force at least one fallback"
        for fallback in record.fallbacks:
            assert fallback["spent"] >= 5
            assert fallback["budget"] == 5

    def test_generous_budget_no_fallbacks(self, rng):
        ds = random_dataset(rng, 100)
        engine = QueryEngine(ds, max_k=2, cache_size=0)
        engine.query(Rect.full(2), [1, 2], budget=10**9)
        record = engine.last_record
        assert record.fallbacks == []
        assert not record.degraded

    def test_degraded_marks_unbudgeted_rerun(self, rng):
        ds = random_dataset(rng, 300)
        engine = QueryEngine(ds, max_k=2, cache_size=0)
        engine.query(Rect.full(2), [1, 2], budget=1)
        record = engine.last_record
        assert record.degraded
        # All three strategies were tried and blew the budget.
        assert len(record.fallbacks) == 3
        assert engine.stats()["degraded"] == 1

    def test_per_call_budget_overrides_default(self, rng):
        ds = random_dataset(rng, 200)
        engine = QueryEngine(ds, max_k=2, default_budget=1, cache_size=0)
        engine.query(Rect.full(2), [1, 2], budget=10**9)
        assert not engine.last_record.degraded
        engine.query(Rect((0.0, 0.0), (0.1, 0.1)), [1, 2])
        assert engine.last_record.budget == 1

    def test_caller_counter_sees_all_spent_units(self, rng):
        ds = random_dataset(rng, 200)
        engine = QueryEngine(ds, max_k=2, cache_size=0)
        counter = CostCounter()
        engine.query(Rect.full(2), [1, 2], budget=5, counter=counter)
        record = engine.last_record
        assert counter.total == record.cost["total"]
        assert counter.total > 5  # includes the abandoned probes


class TestCache:
    def test_repeat_batch_hits_cache(self, rng):
        ds = random_dataset(rng, 150)
        engine = QueryEngine(ds, max_k=3, cache_size=64)
        queries = _random_queries(rng, 15)
        engine.batch(queries)
        before = engine.counter.total
        results = engine.batch(queries)
        assert engine.counter.total == before  # warm pass charged nothing
        assert engine.cache.hit_rate > 0
        traces = engine.records[-15:]
        assert all(t.cache == "hit" for t in traces)
        for (rect, words), got in zip(queries, results):
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert sorted(o.oid for o in got) == want

    def test_cache_disabled(self, rng):
        ds = random_dataset(rng, 60)
        engine = QueryEngine(ds, max_k=2, cache_size=0)
        rect = Rect((1.0, 1.0), (9.0, 9.0))
        engine.query(rect, [1, 2])
        engine.query(rect, [1, 2])
        assert engine.cache.hits == 0
        assert engine.stats()["cache"]["size"] == 0


class TestObservability:
    def test_record_json_round_trips(self, rng):
        ds = random_dataset(rng, 100)
        engine = QueryEngine(ds, max_k=2, default_budget=64)
        engine.query(Rect((2.0, 2.0), (8.0, 8.0)), [1, 2])
        payload = json.loads(engine.last_record.to_json())
        assert payload["strategy"] in ("fused", "keywords_only", "structured_only")
        assert payload["cache"] == "miss"
        assert payload["cost"]["total"] > 0
        assert set(payload["rect"]) == {"lo", "hi"}
        assert payload["keywords"] == [1, 2]

    def test_stats_aggregates(self, rng):
        ds = random_dataset(rng, 100)
        engine = QueryEngine(ds, max_k=3)
        queries = _random_queries(rng, 10)
        engine.batch(queries)
        engine.batch(queries)
        stats = engine.stats()
        assert stats["queries"] == 20
        assert sum(stats["strategies"].values()) == 20
        assert stats["cache"]["hits"] >= 1
        assert stats["cost"]["total"] == engine.counter.total
        json.dumps(stats)  # JSON-safe throughout

    def test_records_bounded(self, rng):
        ds = random_dataset(rng, 50)
        engine = QueryEngine(ds, max_k=2, keep_records=5, cache_size=0)
        for _ in range(8):
            engine.query(Rect.full(2), [1, 2])
        assert len(engine.records) == 5
        assert engine.records[-1].query_id == 8

    def test_export_records_json(self, rng):
        ds = random_dataset(rng, 50)
        engine = QueryEngine(ds, max_k=2)
        engine.query(Rect.full(2), [1, 2])
        exported = json.loads(engine.export_records_json())
        assert len(exported) == 1
        assert exported[0]["query_id"] == 1


class TestValidation:
    def test_empty_keywords_rejected(self, rng):
        engine = QueryEngine(random_dataset(rng, 30), max_k=2)
        with pytest.raises(ValidationError):
            engine.query(Rect.full(2), [])

    def test_too_many_keywords_rejected(self, rng):
        engine = QueryEngine(random_dataset(rng, 30), max_k=2)
        with pytest.raises(ValidationError):
            engine.query(Rect.full(2), [1, 2, 3])

    def test_dimension_mismatch_rejected(self, rng):
        engine = QueryEngine(random_dataset(rng, 30), max_k=2)
        with pytest.raises(ValidationError):
            engine.query(Rect.full(3), [1, 2])

    def test_bad_budget_rejected(self, rng):
        with pytest.raises(ValidationError):
            QueryEngine(random_dataset(rng, 30), default_budget=0)

    def test_flat_rect_coerced(self, rng):
        ds = random_dataset(rng, 60)
        engine = QueryEngine(ds, max_k=2)
        got = engine.query([1.0, 1.0, 9.0, 9.0], [1, 2])
        want = engine.query(Rect((1.0, 1.0), (9.0, 9.0)), [1, 2])
        assert [o.oid for o in got] == [o.oid for o in want]

    def test_odd_flat_rect_rejected(self, rng):
        engine = QueryEngine(random_dataset(rng, 30), max_k=2)
        with pytest.raises(ValidationError):
            engine.query([1.0, 2.0, 3.0], [1])


class TestRegressions:
    """Regression tests for PR-2's serving-layer invariant violations.

    Each of these fails on the PR-1 engine (commit e30d775) and pins the
    fixed behaviour."""

    def test_budgeted_caller_counter_never_raises(self, rng):
        """`BudgetExceeded` must not escape query() through the caller's
        counter: the trace and cache entry land, and the counter still
        receives the full spend (over-run, not enforced)."""
        ds = random_dataset(rng, 120)
        engine = QueryEngine(ds, max_k=2, cache_size=16)
        counter = CostCounter(budget=1)
        results = engine.query(Rect.full(2), [1, 2], counter=counter)
        record = engine.last_record
        assert record is not None and record.cache == "miss"
        assert record.result_count == len(results)
        # The caller's counter got every spent unit despite its blown budget.
        assert counter.total == record.cost["total"]
        assert counter.total > 1
        # The cache entry landed too: the repeat is a hit.
        engine.query(Rect.full(2), [1, 2])
        assert engine.last_record.cache == "hit"

    def test_mutating_returned_results_cannot_poison_cache(self, rng):
        ds = random_dataset(rng, 120)
        engine = QueryEngine(ds, max_k=2, cache_size=16)
        rect = Rect((1.0, 1.0), (9.0, 9.0))
        want = sorted(
            o.oid
            for o in ds
            if rect.contains_point(o.point) and o.contains_keywords([1, 2])
        )
        first = engine.query(rect, [1, 2])
        assert isinstance(first, tuple)
        # A caller trying list-style mutation must not be able to alter the
        # cached entry (on the PR-1 engine this append lands in the cache).
        try:
            first.append("poison")  # type: ignore[attr-defined]
        except AttributeError:
            pass
        second = engine.query(rect, [1, 2])
        assert engine.last_record.cache == "hit"
        assert sorted(o.oid for o in second) == want
        assert engine.last_record.result_count == len(want)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_flat_rect_rejected(self, rng, bad):
        engine = QueryEngine(random_dataset(rng, 40), max_k=2)
        with pytest.raises(ValidationError):
            engine.query([bad, 0.0, 1.0, 1.0], [1])
        with pytest.raises(ValidationError):
            engine.query([0.0, 0.0, bad, 1.0], [1])


class TestEmptyDataset:
    def test_served_with_honest_trace(self):
        engine = QueryEngine(Dataset.empty(2), max_k=3)
        assert engine.query(Rect.full(2), [1, 2]) == ()
        record = engine.last_record
        assert record.strategy == "empty_dataset"
        assert record.cost.get("total", 0) == 0
        assert engine.query(Rect.full(2), [1, 2]) == ()
        assert engine.last_record.cache == "hit"

    def test_still_validates(self):
        engine = QueryEngine(Dataset.empty(2), max_k=3)
        with pytest.raises(ValidationError):
            engine.query(Rect.full(2), [])
        with pytest.raises(ValidationError):
            engine.query(Rect.full(3), [1])

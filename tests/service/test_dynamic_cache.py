"""Regression tests: the engine's result cache vs dynamic-index epochs.

The bug: :class:`~repro.service.QueryEngine`'s LRU cache keyed entries by
``(rect, keywords)`` only, so an engine serving a
:class:`~repro.core.dynamic.DynamicOrpKw` kept returning the pre-write
result after an insert or delete published a new epoch.  The fix keys every
entry by ``(epoch_id, rect, keywords)``; static engines use epoch 0 forever.
"""

import pytest

from repro.core.dynamic import DynamicOrpKw
from repro.errors import ValidationError
from repro.dataset import Dataset, make_objects
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine

RECT = Rect((0.0, 0.0), (10.0, 10.0))


def build_dynamic_engine(**kwargs):
    dyn = DynamicOrpKw(k=2, dim=2)
    engine = QueryEngine(None, dynamic_index=dyn, **kwargs)
    return dyn, engine


class TestDynamicEngineCache:
    def test_insert_invalidates_cached_result(self):
        # The pinned regression: query, write, repeat the query.  Before the
        # epoch-keyed cache the repeat served the stale cached empty result.
        dyn, engine = build_dynamic_engine(cache_size=8)
        assert engine.query(RECT, [1, 2]) == ()
        dyn.insert((5.0, 5.0), {1, 2})
        results = engine.query(RECT, [1, 2])
        assert [obj.point for obj in results] == [(5.0, 5.0)]
        assert engine.last_record.cache == "miss"

    def test_same_epoch_repeat_is_a_hit(self):
        dyn, engine = build_dynamic_engine(cache_size=8)
        dyn.insert((5.0, 5.0), {1, 2})
        first = engine.query(RECT, [1, 2])
        again = engine.query(RECT, [1, 2])
        assert again == first
        assert engine.last_record.cache == "hit"
        assert engine.last_record.strategy == "cache"

    def test_delete_invalidates_cached_result(self):
        dyn, engine = build_dynamic_engine(cache_size=8)
        oid = dyn.insert((5.0, 5.0), {1, 2})
        dyn.insert((20.0, 20.0), {1, 2})  # outside RECT; keeps the index non-empty
        assert len(engine.query(RECT, [1, 2])) == 1
        dyn.delete(oid)
        assert engine.query(RECT, [1, 2]) == ()
        assert engine.last_record.cache == "miss"

    def test_insert_many_single_epoch_single_invalidation(self):
        dyn, engine = build_dynamic_engine(cache_size=8)
        assert engine.query(RECT, [1, 2]) == ()
        dyn.insert_many([(1.0, 1.0), (2.0, 2.0)], [{1, 2}, {1, 2}])
        assert len(engine.query(RECT, [1, 2])) == 2
        # The batch published exactly one epoch; repeating now hits.
        engine.query(RECT, [1, 2])
        assert engine.last_record.cache == "hit"

    def test_dynamic_strategy_recorded(self):
        dyn, engine = build_dynamic_engine()
        dyn.insert((5.0, 5.0), {1, 2})
        engine.query(RECT, [1, 2])
        assert engine.last_record.strategy == "dynamic"
        assert engine.stats()["dynamic_epoch"] == dyn.epoch.epoch_id

    def test_static_engine_cache_still_hits(self):
        # Static engines are epoch 0 forever — the fix must not cost them
        # their hits.
        dataset = Dataset(make_objects([(1.0, 1.0), (2.0, 2.0)], [[1, 2], [1]]))
        engine = QueryEngine(dataset, max_k=2, cache_size=8)
        first = engine.query(RECT, [1, 2])
        assert engine.query(RECT, [1, 2]) == first
        assert engine.last_record.cache == "hit"

    def test_dynamic_rejects_nonempty_dataset(self):
        dataset = Dataset(make_objects([(1.0, 1.0)], [[1]]))
        with pytest.raises(ValidationError):
            QueryEngine(dataset, dynamic_index=DynamicOrpKw(k=2, dim=2))

    def test_dynamic_rejects_vectorized_backend(self):
        with pytest.raises(ValidationError):
            QueryEngine(
                None, dynamic_index=DynamicOrpKw(k=2, dim=2), backend="vectorized"
            )

    def test_engine_requires_dataset_or_dynamic(self):
        with pytest.raises(ValidationError):
            QueryEngine(None)

    def test_dimension_validated_against_dynamic(self):
        _dyn, engine = build_dynamic_engine()
        with pytest.raises(ValidationError):
            engine.query(Rect((0.0,), (1.0,)), [1, 2])

    def test_space_units_track_dynamic_epoch(self):
        dyn, engine = build_dynamic_engine()
        assert engine.space_units == 0
        dyn.insert((5.0, 5.0), {1, 2})
        assert engine.space_units == dyn.space_units > 0

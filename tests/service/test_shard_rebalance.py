"""Online shard maintenance: bounds refresh, rebalancing, cutover isolation.

Pins the satellite bug fix from the dynamization PR — ``shard_bounds``
computed once at build time went stale after inserts, so the fan-out pruned
away shards that now owned matching objects — plus the rebalance machinery
layered on the copy-on-write :class:`~repro.service.sharding.ShardMap`.
"""

import asyncio
import random

import pytest

from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.service.async_engine import AsyncQueryEngine
from repro.service.sharding import ShardedQueryEngine
from repro.service.snapshots import SnapshotManager

from helpers import random_dataset


@pytest.fixture
def rng():
    return random.Random(13)


def _clustered_engine(rng, shards=2, **kwargs):
    """Engine over a dataset confined to [0, 1]^2 so any far-away insert
    lands outside every build-time shard bound."""
    dataset = random_dataset(rng, 40, coord_range=1.0)
    return ShardedQueryEngine(dataset, shards=shards, cache_size=16, **kwargs)


FAR_RECT = Rect((49.0, 49.0), (51.0, 51.0))


class TestBoundsRefresh:
    def test_insert_outside_old_bounds_is_found(self, rng):
        """Regression: write-then-query outside the build-time bounds.

        Before the fix the pruning step dropped every shard whose *stale*
        bounds missed the query rect, so the new object was unreachable.
        """
        engine = _clustered_engine(rng)
        old_bounds = engine.shard_bounds
        assert all(b is not None and b.hi[0] <= 1.0 for b in old_bounds)
        oid = engine.insert((50.0, 50.0), {1, 2})
        got = engine.query(FAR_RECT, [1, 2])
        assert [obj.oid for obj in got] == [oid]
        # The published map's bounds now cover the new point.
        assert any(
            b is not None and b.contains_point((50.0, 50.0))
            for b in engine.shard_bounds
        )

    def test_async_pruning_path_sees_refreshed_bounds(self, rng):
        """The async fan-out prunes from the pinned map's bounds; it must
        observe the same refreshed bounds as the sequential path."""
        engine = _clustered_engine(rng)
        oid = engine.insert((50.0, 50.0), {1, 2})

        async def go():
            async with AsyncQueryEngine(engine) as service:
                return await service.query(FAR_RECT, [1, 2])

        got = asyncio.run(go())
        assert [obj.oid for obj in got] == [oid]

    def test_epoch_keyed_cache_never_serves_stale_results(self, rng):
        """A cached merged result dies with its epoch: the same rect after
        an insert must include the new object, not the cached answer."""
        engine = _clustered_engine(rng)
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        before = engine.query(rect, [1])
        again = engine.query(rect, [1])
        assert again == before  # cache hit within one epoch is fine
        oid = engine.insert((0.5, 0.5), {1})
        after = engine.query(rect, [1])
        assert oid in {obj.oid for obj in after}
        assert len(after) == len(before) + 1


class TestRebalance:
    def test_skewed_inserts_trigger_online_rebalance(self, rng):
        """Hammering one corner overloads its shard until the imbalance
        check fires; results stay exact throughout."""
        engine = _clustered_engine(rng)
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        baseline = {obj.oid for obj in engine.query(rect, [1, 2])}
        inserted = set()
        for _ in range(120):
            point = (rng.uniform(0.0, 0.05), rng.uniform(0.0, 0.05))
            inserted.add(engine.insert(point, {1, 2}))
        stats = engine.stats()["shards"]
        assert stats["rebalances"] >= 1
        # Post-rebalance the load is spread within the configured factor.
        live = stats["live_sizes"]
        fair = sum(live) / len(live)
        assert max(live) <= engine.rebalance_threshold * fair + 1.0
        got = {obj.oid for obj in engine.query(rect, [1, 2])}
        assert got == baseline | inserted

    def test_explicit_rebalance_changes_shard_count(self, rng):
        engine = _clustered_engine(rng, shards=2)
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        before = engine.query(rect, [1, 2])
        engine.rebalance(shards=4)
        assert engine.num_shards == 4
        assert len(engine.shard_engines) == 4
        assert engine.query(rect, [1, 2]) == before

    def test_rebalance_purges_tombstones(self, rng):
        engine = _clustered_engine(rng)
        victims = sorted(engine.epoch.live_oids())[:3]
        for oid in victims:
            engine.delete(oid)
        engine.rebalance()
        assert engine.epoch.tombstones == frozenset()
        assert set(victims).isdisjoint(engine.epoch.live_oids())

    def test_delete_validation_has_no_side_effects(self, rng):
        engine = _clustered_engine(rng)
        state = engine.epoch
        with pytest.raises(ValidationError):
            engine.delete(10**9)
        oid = sorted(engine.epoch.live_oids())[0]
        engine.delete(oid)
        with pytest.raises(ValidationError):
            engine.delete(oid)  # double delete
        # Exactly one epoch was published: the failing paths published none.
        assert engine.epoch.epoch_id == state.epoch_id + 1


class TestSnapshotCutover:
    def test_pinned_snapshot_survives_rebalance_cutover(self, rng):
        """A reader pinned before the cutover keeps answering from the old
        shard layout; the live view moves on underneath it."""
        engine = _clustered_engine(rng)
        manager = SnapshotManager(engine)
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        pinned = manager.pin()
        frozen = {obj.oid for obj in pinned.query(rect, [1, 2])}

        new_oid = engine.insert((0.5, 0.5), {1, 2})
        engine.rebalance(shards=3)
        assert pinned.age() >= 2  # insert + cutover both published epochs

        # Isolation: the pin answers exactly as before the churn ...
        assert {obj.oid for obj in pinned.query(rect, [1, 2])} == frozen
        # ... while the live engine serves the post-cutover layout.
        live = {obj.oid for obj in engine.query(rect, [1, 2])}
        assert live == frozen | {new_oid}
        manager.observe(pinned)
        assert manager.metrics.gauge("snapshot_age").value == pinned.age()

    def test_snapshot_isolated_from_deletes_after_pin(self, rng):
        engine = _clustered_engine(rng)
        manager = SnapshotManager(engine)
        pinned = manager.pin()
        victim = sorted(engine.epoch.live_oids())[0]
        engine.delete(victim)
        assert victim in pinned.live_oids()
        assert victim not in engine.epoch.live_oids()

"""Exhaustive small-budget properties of the fan-out budget split.

The sequential fan-out grants shard ``i`` (with ``left`` shards to go)
``shard_share(pool, left) = ceil(pool / left)`` units and refunds unspent
units to the pool.  The concurrent fan-out fixes shares upfront with
``split_budget_exact``.  Both must conserve budget exactly: no unit lost,
no unit granted twice — the regression here is the old
``max(pool // left, 1)`` rule, which minted extra units once the pool ran
dry (B=2 over four shards granted 4 units).
"""

import itertools
import random

import pytest

from repro.costmodel import CostCounter
from repro.geometry.rectangles import Rect
from repro.service import ShardedQueryEngine
from repro.service.sharding import shard_share, split_budget_exact
from repro.errors import ValidationError

from helpers import random_dataset

SHARD_COUNTS = (1, 2, 3, 4, 7)
BUDGETS = range(0, 61)


class TestShardShare:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_full_spend_telescopes_exactly(self, shards):
        """Every shard spending its whole grant consumes exactly B."""
        for budget in BUDGETS:
            pool = budget
            granted = []
            for left in range(shards, 0, -1):
                share = shard_share(pool, left)
                assert 0 <= share <= pool
                pool -= share
            granted = budget - pool
            assert pool == 0
            assert granted == budget

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_partial_spend_conserves_budget(self, shards):
        """With arbitrary per-shard spends, the charged total never exceeds
        B and the pool never goes negative (exhaustive over small spends)."""
        for budget in range(0, 13):
            spend_space = itertools.product(range(0, 5), repeat=shards)
            for spends in itertools.islice(spend_space, 300):
                pool = budget
                charged = 0
                for shard, spent in enumerate(spends):
                    share = shard_share(pool, shards - shard)
                    used = min(spent, share)
                    pool -= used
                    charged += used
                    assert pool >= 0
                assert charged <= budget
                assert charged + pool == budget

    def test_regression_dry_pool_grants_zero(self):
        """The old rule granted max(0 // left, 1) = 1 from an empty pool."""
        assert shard_share(0, 4) == 0
        assert shard_share(0, 1) == 0
        # B=2 over 4 shards: grants are 1,1,0,0 — exactly 2 units, not 4.
        pool, grants = 2, []
        for left in (4, 3, 2, 1):
            share = shard_share(pool, left)
            grants.append(share)
            pool -= share
        assert grants == [1, 1, 0, 0]


class TestSplitBudgetExact:
    @pytest.mark.parametrize("parts", SHARD_COUNTS)
    def test_sums_exactly_and_stays_balanced(self, parts):
        for budget in BUDGETS:
            shares = split_budget_exact(budget, parts)
            assert len(shares) == parts
            assert sum(shares) == budget
            assert max(shares) - min(shares) <= 1
            assert all(share >= 0 for share in shares)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValidationError):
            split_budget_exact(10, 0)


class TestEngineGrantAccounting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_served_grants_conserve_budget(self, shards, rng):
        """On a real engine, per-slice charges sum to at most B, and the
        grant sequence matches the ceil rule replayed from the slices."""
        dataset = random_dataset(rng, 120)
        engine = ShardedQueryEngine(dataset, shards=shards, cache_size=0)
        for budget in (1, 2, 3, 5, 8, 20, 100):
            counter = CostCounter()
            engine.query(Rect.full(2), [1, 2], budget=budget, counter=counter)
            slices = engine.last_record.shards
            pool = budget
            charged = 0
            for entry in slices:
                share = shard_share(pool, shards - entry["shard_id"])
                assert entry["budget"] == share
                used = min(entry["cost"], share)
                pool -= used
                charged += used
                assert pool >= 0
            assert charged <= budget

    def test_tiny_budget_still_exact_answers(self, rng):
        """Zero-grant shards degrade but never drop results."""
        dataset = random_dataset(rng, 100)
        engine = ShardedQueryEngine(dataset, shards=7, cache_size=0)
        unbudgeted = ShardedQueryEngine(dataset, shards=7, cache_size=0)
        for budget in (1, 2, 3):
            rect = Rect.full(2)
            words = [1, 2]
            assert engine.query(rect, words, budget=budget) == unbudgeted.query(
                rect, words
            )

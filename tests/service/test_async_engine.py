"""Tests for the async serving layer: admission, fan-out, snapshots.

pytest-asyncio is an optional dev dependency; every test here drives its
coroutines through ``asyncio.run`` inside a plain sync function so the
suite passes with or without the plugin installed.
"""

import asyncio
import threading

import pytest

from repro.costmodel import CostCounter
from repro.core.dynamic import DynamicOrpKw
from repro.errors import BudgetExceeded, ValidationError
from repro.geometry.rectangles import Rect
from repro.service import (
    AdmissionController,
    AsyncDynamicIndex,
    AsyncQueryEngine,
    QueryEngine,
    ShardedQueryEngine,
)
from repro.trace import TraceSpan

from helpers import random_dataset


def small_workload(rng, count=25, coord_range=10.0, vocabulary=8):
    queries = []
    for _ in range(count):
        a, b = sorted(rng.uniform(0, coord_range) for _ in range(2))
        c, d = sorted(rng.uniform(0, coord_range) for _ in range(2))
        queries.append((Rect((a, c), (b, d)), rng.sample(range(1, vocabulary + 1), 2)))
    return queries


class TestAdmissionController:
    def test_reserve_and_release(self):
        control = AdmissionController(max_inflight_cost=100)
        control.admit(60)
        assert control.inflight_cost == 60
        assert control.inflight_queries == 1
        control.admit(40)
        assert control.inflight_cost == 100
        control.release(60)
        control.release(40)
        assert control.inflight_cost == 0
        assert control.inflight_queries == 0

    def test_shed_is_budget_exceeded_with_rollback(self):
        control = AdmissionController(max_inflight_cost=100)
        control.admit(80)
        with pytest.raises(BudgetExceeded):
            control.admit(30)
        # The refused reservation left no residue: a fitting one still lands.
        assert control.inflight_cost == 80
        assert control.inflight_queries == 1
        control.admit(20)
        assert control.inflight_cost == 100

    def test_unbounded_admits_everything(self):
        control = AdmissionController(max_inflight_cost=None)
        for _ in range(50):
            control.admit(10_000)
        assert control.inflight_queries == 50

    def test_bad_bound_rejected(self):
        with pytest.raises(ValidationError):
            AdmissionController(max_inflight_cost=0)


class TestDifferentialPlain:
    def test_byte_identical_to_sync_engine(self, rng):
        """Quiesced writer: async answers == sync answers, order included."""
        dataset = random_dataset(rng, 250)
        sync = QueryEngine(dataset, cache_size=0)
        wrapped = QueryEngine(dataset, cache_size=0)
        workload = small_workload(rng)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                return await engine.batch(workload, budget=300)

        got = asyncio.run(drive())
        expect = [sync.query(rect, words, budget=300) for rect, words in workload]
        assert got == expect  # tuples compare element-wise: byte-identical


class TestDifferentialSharded:
    def test_identical_to_sync_sharded_engine(self, rng):
        dataset = random_dataset(rng, 300)
        sync = ShardedQueryEngine(dataset, shards=4, cache_size=0)
        wrapped = ShardedQueryEngine(dataset, shards=4, cache_size=0)
        workload = small_workload(rng)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                return await engine.batch(workload, budget=400)

        got = asyncio.run(drive())
        expect = [sync.query(rect, words, budget=400) for rect, words in workload]
        assert got == expect

    def test_matches_unsharded_engine_result_sets(self, rng):
        dataset = random_dataset(rng, 300)
        plain = QueryEngine(dataset, cache_size=0)
        wrapped = ShardedQueryEngine(dataset, shards=3, cache_size=0)
        workload = small_workload(rng)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                return await engine.batch(workload)

        for (rect, words), got in zip(workload, asyncio.run(drive())):
            expect = tuple(sorted(plain.query(rect, words), key=lambda o: o.oid))
            assert got == expect

    def test_budget_split_exact_over_active_shards(self, rng):
        dataset = random_dataset(rng, 200)
        wrapped = ShardedQueryEngine(dataset, shards=4, cache_size=0)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                await engine.query(Rect.full(2), [1, 2], budget=103)

        asyncio.run(drive())
        slices = wrapped.last_record.shards
        active = [s for s in slices if s["strategy"] != "pruned"]
        assert sum(s["budget"] for s in active) == 103
        assert max(s["budget"] for s in active) - min(
            s["budget"] for s in active
        ) <= 1

    def test_pruned_shards_are_recorded_not_queried(self, rng):
        dataset = random_dataset(rng, 200, coord_range=10.0)
        wrapped = ShardedQueryEngine(dataset, shards=4, cache_size=0)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                # A sliver in one corner cannot touch every shard's bounds.
                await engine.query(Rect((0.0, 0.0), (0.4, 0.4)), [1, 2])

        asyncio.run(drive())
        slices = wrapped.last_record.shards
        assert len(slices) == 4  # every shard accounted for
        pruned = [s for s in slices if s["strategy"] == "pruned"]
        assert pruned, "a corner sliver should miss at least one shard"
        for entry in pruned:
            assert entry["cost"] == 0 and not entry["degraded"]

    def test_caller_counter_receives_merged_spend(self, rng):
        dataset = random_dataset(rng, 150)
        wrapped = ShardedQueryEngine(dataset, shards=2, cache_size=0)
        caller = CostCounter()

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                await engine.query(Rect.full(2), [1, 2], counter=caller)

        asyncio.run(drive())
        record = wrapped.last_record
        assert caller.total == record.cost["total"] > 0

    def test_cache_hit_served_from_loop_thread(self, rng):
        dataset = random_dataset(rng, 150)
        wrapped = ShardedQueryEngine(dataset, shards=2, cache_size=8)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                first = await engine.query(Rect.full(2), [1, 2])
                second = await engine.query(Rect.full(2), [1, 2])
                return first, second

        first, second = asyncio.run(drive())
        assert first == second
        assert wrapped.last_record.strategy == "cache"
        assert wrapped.last_record.cache == "hit"

    def test_trace_grafts_preserve_leaf_sum_invariant(self, rng):
        """Per-shard tracer trees grafted into the fan-out root must keep
        leaf costs summing exactly to the merged counter totals."""
        dataset = random_dataset(rng, 200)
        wrapped = ShardedQueryEngine(dataset, shards=3, cache_size=0, tracing=True)

        async def drive():
            async with AsyncQueryEngine(wrapped) as engine:
                await engine.query(Rect.full(2), [1, 2], budget=200)

        asyncio.run(drive())
        record = wrapped.last_record
        assert record.trace is not None
        root = TraceSpan.from_dict(record.trace)
        leaf = root.leaf_costs()
        for category, units in record.cost.items():
            if category != "total":
                assert leaf.get(category, 0) == units
        assert sum(leaf.values()) == record.cost["total"]


class TestShedding:
    def test_shed_query_recorded_with_reason(self, rng):
        dataset = random_dataset(rng, 150)
        wrapped = ShardedQueryEngine(dataset, shards=2, cache_size=0)
        workload = small_workload(rng, count=10)

        async def drive():
            async with AsyncQueryEngine(wrapped, max_inflight_cost=100) as engine:
                return await engine.batch(workload, budget=100)

        results = asyncio.run(drive())
        shed = [r for r in results if r is None]
        assert shed, "concurrent batch above the bound must shed"
        records = [r for r in wrapped.records if r.strategy == "shed"]
        assert len(records) == len(shed)
        for record in records:
            assert record.reason == "shed:admission"
            assert record.cache == "bypass"
            assert record.to_dict()["reason"] == "shed:admission"

    def test_served_queries_unaffected_by_sheds(self, rng):
        dataset = random_dataset(rng, 150)
        sync = ShardedQueryEngine(dataset, shards=2, cache_size=0)
        wrapped = ShardedQueryEngine(dataset, shards=2, cache_size=0)
        workload = small_workload(rng, count=10)

        async def drive():
            async with AsyncQueryEngine(wrapped, max_inflight_cost=100) as engine:
                return await engine.batch(workload, budget=100)

        results = asyncio.run(drive())
        for (rect, words), got in zip(workload, results):
            if got is not None:
                assert got == sync.query(rect, words, budget=100)

    def test_metrics_track_admitted_and_shed(self, rng):
        dataset = random_dataset(rng, 100)
        wrapped = ShardedQueryEngine(dataset, shards=2, cache_size=0)
        engine = AsyncQueryEngine(wrapped, max_inflight_cost=100)
        workload = small_workload(rng, count=8)

        async def drive():
            return await engine.batch(workload, budget=100)

        try:
            asyncio.run(drive())
        finally:
            engine.close()
        stats = engine.stats()
        counters = stats["metrics"]["counters"]
        assert counters["admitted_total"] + counters["shed_total"] == len(workload)
        assert stats["shed"] == counters["shed_total"]
        # Quiesced: every reservation was released.
        gauges = stats["metrics"]["gauges"]
        assert gauges["inflight_cost"] == 0
        assert gauges["inflight_queries"] == 0


class TestSetstateCompat:
    def test_old_pickles_regrow_shard_bounds(self, rng):
        # Engines pickled before the copy-on-write shard map existed carried
        # plain shard_datasets / shard_engines attributes (and, before the
        # concurrent fan-out, no shard_bounds at all): reconstruct such a
        # state dict and check the bounds are regrown on revival.
        engine = ShardedQueryEngine(random_dataset(rng, 80), shards=2)
        state = dict(engine.__dict__)
        old_map = state.pop("_state")
        state.pop("_objects")
        state.pop("_owner")
        state.pop("_next_oid")
        state["shard_datasets"] = list(old_map.datasets)
        state["shard_engines"] = list(old_map.engines)
        revived = ShardedQueryEngine.__new__(ShardedQueryEngine)
        revived.__setstate__(state)
        assert len(revived.shard_bounds) == 2
        assert all(bounds is not None for bounds in revived.shard_bounds)
        # The migrated map serves queries identically to the original.
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        assert revived.query(rect, [1, 2]) == engine.query(rect, [1, 2])


class TestAsyncDynamicIndex:
    def test_mutations_and_snapshot_reads(self, rng):
        index = DynamicOrpKw(k=2, dim=2)

        async def drive():
            async with AsyncDynamicIndex(index) as adi:
                oids = await adi.insert_many(
                    [(rng.random(), rng.random()) for _ in range(30)],
                    [{1, 2} for _ in range(30)],
                )
                await adi.delete(oids[0])
                extra = await adi.insert((0.5, 0.5), {1, 2})
                found = await adi.query(Rect.full(2), [1, 2])
                return oids, extra, found

        oids, extra, found = asyncio.run(drive())
        got = {obj.oid for obj in found}
        assert got == (set(oids) - {oids[0]}) | {extra}

    def test_gauges_meter_epochs_and_staleness(self, rng):
        index = DynamicOrpKw(k=2, dim=2)

        async def drive():
            async with AsyncDynamicIndex(index) as adi:
                await adi.insert((0.1, 0.1), {1, 2})
                await adi.insert((0.2, 0.2), {1, 2})
                stale = adi.pin()
                await adi.insert((0.3, 0.3), {1, 2})
                await adi.query(Rect.full(2), [1, 2])
                return stale, adi.stats(), adi.metrics.snapshot()

        stale, stats, metrics = asyncio.run(drive())
        assert stats["published_epoch"] == 3
        assert metrics["gauges"]["published_epoch"] == 3
        assert metrics["gauges"]["live_objects"] == 3
        # The gauge tracks the latest pin (fresh), but the held snapshot
        # reports its own staleness.
        assert stale.age() == 1
        assert metrics["counters"]["writes_total"] == 3
        assert metrics["counters"]["reads_total"] == 1


def _run_threaded_stress(readers=4, steps=60):
    """Threaded stress harness: 1 writer, ``readers`` reader threads.

    The writer interleaves ``insert_many``/``delete`` (crossing several
    rebuild thresholds) and records each published epoch's live set in an
    oracle; readers pin snapshots and assert their full-rectangle answers
    equal the oracle set for the pinned epoch — exactly, every time.
    """
    import random as random_module

    rng = random_module.Random(0xA5)
    index = DynamicOrpKw(k=2, dim=2)
    oracle = {0: frozenset()}
    live = set()
    failures = []
    done = threading.Event()
    reads = [0] * readers

    def writer():
        for step in range(steps):
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                index.delete(victim)
                live.discard(victim)
            else:
                batch = rng.randint(1, 7)
                oids = index.insert_many(
                    [(rng.random(), rng.random()) for _ in range(batch)],
                    [{1, 2} for _ in range(batch)],
                )
                live.update(oids)
            oracle[index.epoch.epoch_id] = frozenset(live)
        done.set()

    def reader(slot):
        while not done.is_set() or reads[slot] == 0:
            snapshot = index.snapshot()
            got = sorted(obj.oid for obj in snapshot.query(Rect.full(2), [1, 2]))
            if len(got) != len(set(got)):
                failures.append(("duplicates", snapshot.epoch_id, got))
                break
            # The writer records the oracle entry right after publishing;
            # spin briefly for it (publication precedes the record).
            expected = None
            for _ in range(200_000):
                expected = oracle.get(snapshot.epoch_id)
                if expected is not None:
                    break
            if expected is None:
                failures.append(("no-oracle", snapshot.epoch_id))
                break
            if set(got) != expected:
                failures.append(
                    ("mismatch", snapshot.epoch_id, got, sorted(expected))
                )
                break
            reads[slot] += 1

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(slot,)) for slot in range(readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return failures, reads


class TestIsolationStress:
    def test_threaded_readers_never_see_partial_state(self):
        """≥4 concurrent readers + 1 writer: zero isolation violations."""
        failures, reads = _run_threaded_stress(readers=4, steps=60)
        assert not failures, failures[:3]
        assert all(count > 0 for count in reads)

    def test_asyncio_mixed_read_write_stress(self, rng):
        """The same oracle through AsyncDynamicIndex: writer coroutine vs
        reader coroutines whose queries run on the worker pool."""
        index = DynamicOrpKw(k=2, dim=2)
        oracle = {0: frozenset()}
        live = set()
        failures = []

        async def drive():
            async with AsyncDynamicIndex(index) as adi:
                done = asyncio.Event()

                async def writer():
                    for _ in range(25):
                        oids = await adi.insert_many(
                            [(rng.random(), rng.random()) for _ in range(5)],
                            [{1, 2} for _ in range(5)],
                        )
                        live.update(oids)
                        oracle[index.epoch.epoch_id] = frozenset(live)
                        for victim in rng.sample(sorted(live), 2):
                            await adi.delete(victim)
                            live.discard(victim)
                            oracle[index.epoch.epoch_id] = frozenset(live)
                        await asyncio.sleep(0)
                    done.set()

                async def reader():
                    count = 0
                    while not done.is_set() or count == 0:
                        snapshot = adi.pin()
                        found = await adi.query(Rect.full(2), [1, 2])
                        del found  # exercised the serving path; oracle below
                        got = sorted(
                            obj.oid
                            for obj in snapshot.query(Rect.full(2), [1, 2])
                        )
                        expected = oracle.get(snapshot.epoch_id)
                        if expected is not None and set(got) != expected:
                            failures.append((snapshot.epoch_id, got))
                            break
                        count += 1
                        await asyncio.sleep(0)

                await asyncio.gather(writer(), *(reader() for _ in range(4)))

        asyncio.run(drive())
        assert not failures, failures[:3]

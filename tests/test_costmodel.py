"""Unit tests for repro.costmodel."""

import pytest

from repro.costmodel import CostCounter, NULL_COUNTER, ensure_counter
from repro.errors import BudgetExceeded


class TestCostCounter:
    def test_starts_empty(self):
        counter = CostCounter()
        assert counter.total == 0
        assert counter["objects_examined"] == 0

    def test_charge_accumulates(self):
        counter = CostCounter()
        counter.charge("objects_examined")
        counter.charge("objects_examined", 4)
        assert counter["objects_examined"] == 5
        assert counter.total == 5

    def test_categories_tracked_separately(self):
        counter = CostCounter()
        counter.charge("objects_examined", 2)
        counter.charge("nodes_visited", 3)
        assert counter["objects_examined"] == 2
        assert counter["nodes_visited"] == 3
        assert counter.total == 5

    def test_reset_clears_counts(self):
        counter = CostCounter()
        counter.charge("comparisons", 7)
        counter.reset()
        assert counter.total == 0
        assert counter["comparisons"] == 0

    def test_snapshot_includes_total(self):
        counter = CostCounter()
        counter.charge("structure_probes", 2)
        snap = counter.snapshot()
        assert snap == {"structure_probes": 2, "total": 2}

    def test_snapshot_is_a_copy(self):
        counter = CostCounter()
        counter.charge("comparisons")
        snap = counter.snapshot()
        snap["comparisons"] = 99
        assert counter["comparisons"] == 1


class TestBudget:
    def test_budget_not_exceeded(self):
        counter = CostCounter(budget=10)
        counter.charge("objects_examined", 10)
        assert counter.total == 10

    def test_budget_exceeded_raises(self):
        counter = CostCounter(budget=10)
        with pytest.raises(BudgetExceeded) as excinfo:
            counter.charge("objects_examined", 11)
        assert excinfo.value.spent == 11
        assert excinfo.value.budget == 10

    def test_budget_exceeded_across_charges(self):
        counter = CostCounter(budget=3)
        counter.charge("nodes_visited", 2)
        counter.charge("nodes_visited", 1)
        with pytest.raises(BudgetExceeded):
            counter.charge("nodes_visited", 1)

    def test_budget_survives_reset(self):
        counter = CostCounter(budget=2)
        counter.charge("comparisons", 2)
        counter.reset()
        counter.charge("comparisons", 2)
        with pytest.raises(BudgetExceeded):
            counter.charge("comparisons")


class TestNullCounter:
    def test_null_counter_ignores_charges(self):
        NULL_COUNTER.charge("objects_examined", 1000)
        assert NULL_COUNTER.total == 0

    def test_ensure_counter_substitutes_null(self):
        assert ensure_counter(None) is NULL_COUNTER

    def test_ensure_counter_passes_through(self):
        counter = CostCounter()
        assert ensure_counter(counter) is counter

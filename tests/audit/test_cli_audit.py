"""End-to-end CLI tests for `repro.cli audit run | gate | scorecard`."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def baseline_dir(tmp_path_factory):
    """One committed-baseline directory shared by the read-only tests."""
    directory = tmp_path_factory.mktemp("baselines")
    code = main(
        ["audit", "run", "--quick", "--rows", "T1.1", "--dir", str(directory)]
    )
    assert code == 0
    return directory


class TestAuditRun:
    def test_writes_bench_file_and_scorecard(self, baseline_dir, capsys):
        # The fixture already ran; re-running must be byte-identical.
        before = (baseline_dir / "BENCH_T1_1.json").read_text()
        assert main(
            ["audit", "run", "--quick", "--rows", "T1.1",
             "--dir", str(baseline_dir)]
        ) == 0
        captured = capsys.readouterr()
        assert "Table-1 scaling-law scorecard" in captured.out
        assert "wrote" in captured.err
        after = (baseline_dir / "BENCH_T1_1.json").read_text()
        assert before == after
        report = json.loads(after)
        assert report["row"] == "T1.1"

    def test_unknown_row_is_a_clean_error(self, tmp_path, capsys):
        assert main(["audit", "run", "--rows", "T9.9", "--dir", str(tmp_path)]) == 2
        assert "unknown Table-1 row" in capsys.readouterr().err


class TestAuditGate:
    def test_gate_passes_on_fresh_baselines(self, baseline_dir, capsys):
        code = main(
            ["audit", "gate", "--quick", "--rows", "T1.1",
             "--dir", str(baseline_dir)]
        )
        assert code == 0
        assert "checks passed" in capsys.readouterr().out

    def test_gate_fails_on_drifted_baseline(self, baseline_dir, tmp_path, capsys):
        report = json.loads((baseline_dir / "BENCH_T1_1.json").read_text())
        report["fits"]["planted_n"]["total"]["slope"] += 0.5
        (tmp_path / "BENCH_T1_1.json").write_text(json.dumps(report))
        code = main(
            ["audit", "gate", "--quick", "--rows", "T1.1", "--dir", str(tmp_path)]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_gate_missing_baseline_exit_2(self, tmp_path, capsys):
        code = main(
            ["audit", "gate", "--quick", "--rows", "T1.1", "--dir", str(tmp_path)]
        )
        assert code == 2
        assert "MISSING" in capsys.readouterr().out

    def test_gate_exports_artifact(self, baseline_dir, tmp_path, capsys):
        export = tmp_path / "artifact"
        export.mkdir()
        code = main(
            ["audit", "gate", "--quick", "--rows", "T1.1",
             "--dir", str(baseline_dir), "--export", str(export)]
        )
        assert code == 0
        assert (export / "BENCH_T1_1.json").exists()


class TestAuditScorecard:
    def test_scorecard_reads_committed_baselines(self, baseline_dir, capsys):
        code = main(
            ["audit", "scorecard", "--rows", "T1.1", "--dir", str(baseline_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scorecard" in out and "T1.1" in out

    def test_scorecard_without_baselines_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["audit", "scorecard", "--rows", "T1.1", "--dir", str(tmp_path)]
        )
        assert code == 2
        assert "no committed baseline" in capsys.readouterr().err

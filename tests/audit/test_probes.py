"""Structural probe tests: bounds, gauge registration, engine integration."""

import pytest

from repro.audit.probes import (
    StructuralReport,
    dim_reduction_report,
    engine_reports,
    kd_crossing_report,
    partition_crossing_report,
    register,
    space_report,
)
from repro.core.dim_reduction import DimReductionOrpKw
from repro.core.orp_kw import OrpKwIndex
from repro.service.engine import QueryEngine
from repro.trace import MetricsRegistry
from repro.workloads.generators import WorkloadConfig, zipf_dataset


@pytest.fixture(scope="module")
def dataset_2d():
    return zipf_dataset(
        WorkloadConfig(
            num_objects=400, dim=2, vocabulary=32,
            doc_min=1, doc_max=3, zipf_s=1.0, seed=9,
        )
    )


@pytest.fixture(scope="module")
def dataset_3d():
    return zipf_dataset(
        WorkloadConfig(
            num_objects=400, dim=3, vocabulary=32,
            doc_min=1, doc_max=3, zipf_s=1.0, seed=9,
        )
    )


class TestProbeReports:
    def test_kd_crossing_within_lemma10(self, dataset_2d):
        index = OrpKwIndex(dataset_2d, k=2)
        report = kd_crossing_report(index._transform.tree)
        assert report.ok
        assert report.values["max_line_crossing_nodes"] <= report.bounds[
            "max_line_crossing_nodes"
        ]

    def test_dim_reduction_within_propositions(self, dataset_3d):
        index = DimReductionOrpKw(dataset_3d, k=2)
        report = dim_reduction_report(index, seed=17)
        assert report.ok
        assert report.values["max_type2_per_level"] <= 2

    def test_space_near_linear(self, dataset_2d):
        index = OrpKwIndex(dataset_2d, k=2)
        report = space_report(index, per_unit_cap=64.0)
        assert report.ok

    def test_space_cap_can_fail(self, dataset_2d):
        index = OrpKwIndex(dataset_2d, k=2)
        report = space_report(index, per_unit_cap=0.001)
        assert not report.ok

    def test_partition_crossing_within_bound(self, dataset_2d):
        from repro.partitiontree.tree import PartitionTree

        tree = PartitionTree([obj.point for obj in dataset_2d.objects])
        assert partition_crossing_report(tree, seed=11).ok

    def test_report_dict_is_sorted_and_json_safe(self, dataset_2d):
        import json

        index = OrpKwIndex(dataset_2d, k=2)
        data = kd_crossing_report(index._transform.tree).to_dict()
        assert list(data["values"]) == sorted(data["values"])
        json.dumps(data)


class TestRegistration:
    def test_register_exports_gauges(self):
        report = StructuralReport(
            probe="demo", values={"x": 3.0}, bounds={"x": 10.0},
            ok=True, notes="",
        )
        registry = MetricsRegistry()
        register(report, registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges["probe_demo_x"] == 3.0
        assert gauges["probe_demo_ok"] == 1.0

    def test_failed_probe_gauge_is_zero(self):
        report = StructuralReport(
            probe="demo", values={}, bounds={}, ok=False, notes="",
        )
        registry = MetricsRegistry()
        register(report, registry)
        assert registry.snapshot()["gauges"]["probe_demo_ok"] == 0.0


class TestEngineIntegration:
    def test_probe_structure_lands_in_stats_metrics(self, dataset_2d):
        engine = QueryEngine(dataset_2d, max_k=2)
        reports = engine.probe_structure()
        assert {r["probe"] for r in reports} == {"kd_crossing", "space"}
        gauges = engine.stats()["metrics"]["gauges"]
        assert gauges["probe_kd_crossing_ok"] == 1.0
        assert gauges["probe_space_ok"] == 1.0
        assert gauges["probe_kd_crossing_n"] == float(engine.input_size)

    def test_engine_reports_without_registration(self, dataset_2d):
        engine = QueryEngine(dataset_2d, max_k=2)
        engine_reports(engine)
        assert engine.stats()["metrics"]["gauges"] == {}

"""Gate + baseline tests: persistence round-trip, drift detection, exit codes.

The T1.1 quick sweep runs once (module-scoped fixture) and every test works
on copies of that report, so the suite stays fast while still exercising the
real sweep → fit → serialize → gate pipeline end to end.
"""

import copy
import json

import pytest

from repro.audit import (
    SCHEMA_VERSION,
    compare_reports,
    load_baselines,
    load_report,
    render_gate,
    run_gate,
    serialize_report,
    write_report,
)
from repro.audit.baseline import bench_filename, bench_path, check_schema
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def t11_report():
    from repro.audit import run_row

    return run_row("T1.1", mode="quick")


class TestBaselinePersistence:
    def test_round_trip(self, t11_report, tmp_path):
        path = write_report(t11_report, tmp_path)
        assert path.name == "BENCH_T1_1.json"
        loaded = load_report(tmp_path, "T1.1")
        check_schema(loaded, str(path))
        assert loaded["row"] == "T1.1"
        assert loaded["schema_version"] == SCHEMA_VERSION

    def test_serialization_is_stable(self, t11_report):
        assert serialize_report(t11_report) == serialize_report(
            copy.deepcopy(t11_report)
        )

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_report(tmp_path, "T1.1") is None
        assert load_baselines(tmp_path, ["T1.1"]) == {"T1.1": None}

    def test_corrupt_baseline_rejected(self, tmp_path):
        bench_path(tmp_path, "T1.1").write_text("{not json")
        with pytest.raises(ValidationError, match="corrupt"):
            load_report(tmp_path, "T1.1")

    def test_stale_schema_rejected(self, t11_report, tmp_path):
        stale = copy.deepcopy(t11_report)
        stale["schema_version"] = SCHEMA_VERSION + 1
        write_report(stale, tmp_path)
        with pytest.raises(ValidationError, match="schema_version"):
            load_baselines(tmp_path, ["T1.1"])

    def test_no_timestamps_in_report(self, t11_report):
        text = serialize_report(t11_report)
        for marker in ("time", "date", "stamp"):
            assert marker not in text.lower()


class TestCompareReports:
    def test_identical_reports_pass(self, t11_report):
        checks = compare_reports(t11_report, copy.deepcopy(t11_report))
        assert checks and all(check.ok for check in checks)

    def test_exponent_drift_fails(self, t11_report):
        drifted = copy.deepcopy(t11_report)
        fit = drifted["fits"]["planted_n"]["total"]
        fit["slope"] = fit["slope"] + 0.5  # a 1/k-sized accounting regression
        failed = [c for c in compare_reports(t11_report, drifted) if not c.ok]
        assert [c.name for c in failed] == ["planted_n/total"]
        assert "drift" in failed[0].detail

    def test_missing_fit_fails(self, t11_report):
        broken = copy.deepcopy(t11_report)
        del broken["fits"]["planted_n"]["total"]
        failed = [c for c in compare_reports(t11_report, broken) if not c.ok]
        assert any(c.name == "planted_n/total" for c in failed)

    def test_structural_regression_fails(self, t11_report):
        regressed = copy.deepcopy(t11_report)
        regressed["structural"][0]["ok"] = False
        failed = [c for c in compare_reports(t11_report, regressed) if not c.ok]
        assert [c.kind for c in failed] == ["structural"]

    def test_known_bad_probe_does_not_block(self, t11_report):
        # A probe already failing in the baseline must not fail the gate
        # again (the regression was gated when it first appeared).
        baseline = copy.deepcopy(t11_report)
        baseline["structural"][0]["ok"] = False
        fresh = copy.deepcopy(baseline)
        assert all(c.ok for c in compare_reports(baseline, fresh))


class TestRunGate:
    def test_missing_baselines_exit_2(self, tmp_path):
        result = run_gate(tmp_path, ["T1.1"], mode="quick")
        assert result.missing == ["T1.1"]
        assert result.exit_code == 2
        assert bench_filename("T1.1") in render_gate(result)

    def test_clean_gate_exit_0_and_exports(self, t11_report, tmp_path):
        write_report(t11_report, tmp_path)
        export = tmp_path / "artifact"
        export.mkdir()
        result = run_gate(tmp_path, ["T1.1"], mode="quick", export_dir=export)
        assert result.exit_code == 0
        assert (export / "BENCH_T1_1.json").exists()
        assert "17/17" not in render_gate(result)  # single-row subset

    def test_tampered_baseline_exit_1(self, t11_report, tmp_path):
        tampered = copy.deepcopy(t11_report)
        tampered["fits"]["planted_n"]["total"]["slope"] += 0.5
        write_report(tampered, tmp_path)
        result = run_gate(tmp_path, ["T1.1"], mode="quick")
        assert result.exit_code == 1
        assert any("FAIL" in line for line in render_gate(result).splitlines())


class TestCommittedBaselines:
    """The BENCH files committed at the repo root stay loadable and gated."""

    def test_committed_baselines_parse(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        from repro.audit import AUDITED_ROWS

        baselines = load_baselines(root, AUDITED_ROWS)
        for row in AUDITED_ROWS:
            report = baselines[row]
            assert report is not None, f"missing committed {bench_filename(row)}"
            assert report["mode"] == "full"
            # Committed copies are canonical: serializing what we loaded
            # reproduces the file byte for byte.
            path = bench_path(root, row)
            assert json.loads(path.read_text()) == report
            assert serialize_report(report) == path.read_text()

"""Sweep determinism, report shape, predictions, and scorecard rendering."""

import pytest

from repro.audit import (
    AUDITED_ROWS,
    MODES,
    TABLE1,
    measure_query,
    render_scorecard,
    require_row,
    run_row,
    serialize_report,
)
from repro.costmodel import CATEGORIES
from repro.errors import ValidationError
from repro.trace import MetricsRegistry


@pytest.fixture(scope="module")
def t11_report():
    return run_row("T1.1", mode="quick")


class TestMeasureQuery:
    def test_returns_out_and_cost(self):
        measured = measure_query(lambda c: [c.charge("comparisons", 3)] * 2)
        assert measured["out"] == 2
        assert measured["cost"]["comparisons"] == 3
        assert measured["cost"]["total"] == 3

    def test_feeds_registry(self):
        registry = MetricsRegistry()
        measure_query(lambda c: [c.charge("comparisons", 3)], registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["queries_total"] == 1
        assert snapshot["histograms"]["cost_total"]["count"] == 1
        for category in CATEGORIES:
            assert f"cost_{category}" in snapshot["histograms"]


class TestRunRow:
    def test_unknown_row_rejected(self):
        with pytest.raises(ValidationError, match="unknown Table-1 row"):
            run_row("T9.9", mode="quick")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValidationError, match="unknown audit mode"):
            run_row("T1.1", mode="leisurely")

    def test_report_shape(self, t11_report):
        assert t11_report["row"] == "T1.1"
        assert t11_report["mode"] == "quick"
        assert set(t11_report["sweeps"]) == {
            "empty_out", "planted_n", "planted_out",
        }
        for sweep in t11_report["sweeps"].values():
            assert sweep["points"], "every sweep carries measured points"
            for point in sweep["points"]:
                assert set(point) == {"parameter", "value", "out", "cost"}
        assert t11_report["structural"], "structural probes present"

    def test_every_declared_exponent_has_a_fit(self, t11_report):
        for exponent in require_row("T1.1").exponents:
            fit = t11_report["fits"][exponent.sweep][exponent.category]
            assert fit["ci_low"] <= fit["slope"] <= fit["ci_high"]

    def test_rerun_is_byte_identical(self, t11_report):
        again = run_row("T1.1", mode="quick")
        assert serialize_report(again) == serialize_report(t11_report)

    def test_registry_receives_sweep_queries(self):
        registry = MetricsRegistry()
        run_row("T1.1", mode="quick", registry=registry)
        assert registry.counter("queries_total").value > 0


class TestPredictions:
    def test_every_audited_row_is_declared(self):
        assert set(AUDITED_ROWS) <= set(TABLE1)

    def test_bands_are_positive(self):
        for row in TABLE1.values():
            assert row.exponents, f"{row.row} gates no exponents"
            for exponent in row.exponents:
                assert exponent.slack > 0
                assert exponent.tolerance > 0
                assert 0 <= exponent.predicted <= 1.5

    def test_modes_cover_quick_and_full(self):
        assert set(MODES) == {"quick", "full"}
        quick, full = MODES["quick"], MODES["full"]
        assert quick.resamples < full.resamples
        assert max(quick.sweep_objects) <= max(full.sweep_objects)


class TestScorecard:
    def test_renders_all_sections(self, t11_report):
        card = render_scorecard({"T1.1": t11_report})
        assert "Table-1 scaling-law scorecard" in card
        assert "Structural health" in card
        assert "┌" in card and "└" in card  # box-drawing borders
        for sweep in ("empty_out", "planted_n", "planted_out"):
            assert sweep in card

    def test_verdict_is_one_sided(self, t11_report):
        # empty_out fits ~0.0 against a 0.5 bound: below the bound passes.
        card = render_scorecard({"T1.1": t11_report})
        lines = [ln for ln in card.splitlines() if "empty_out" in ln]
        assert lines and all("pass" in ln for ln in lines)

    def test_missing_fit_marked(self, t11_report):
        import copy

        broken = copy.deepcopy(t11_report)
        del broken["fits"]["planted_n"]["total"]
        assert "missing" in render_scorecard({"T1.1": broken})

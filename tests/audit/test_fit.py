"""Unit tests for repro.audit.fit (log-log exponent fitting)."""

import random

import pytest

from repro.audit.fit import ExponentFit, fit_exponent
from repro.errors import ValidationError


class TestRecovery:
    def test_exact_power_law_recovers_exponent(self):
        xs = [100, 200, 400, 800]
        for exponent in (0.0, 0.5, 1.0, 2.0):
            ys = [x**exponent for x in xs]
            fit = fit_exponent(xs, ys, resamples=50, seed=1)
            assert fit.slope == pytest.approx(exponent, abs=1e-9)
            assert fit.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_noisy_power_law_recovers_within_ci(self):
        rng = random.Random(2)
        xs = [float(x) for x in (100, 200, 400, 800, 1600)]
        ys = [x**0.5 * rng.uniform(0.8, 1.2) for x in xs]
        fit = fit_exponent(xs, ys, resamples=200, seed=3)
        assert abs(fit.slope - 0.5) < 0.2
        assert fit.ci_low <= fit.slope <= fit.ci_high

    def test_nonpositive_values_clamped_not_fatal(self):
        fit = fit_exponent([10, 20, 40], [0, 0, 0], resamples=10, seed=0)
        assert fit.slope == pytest.approx(0.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValidationError):
            fit_exponent([10], [5], resamples=0, seed=0)


class TestDeterminism:
    def test_same_seed_same_fit(self):
        xs = [100, 200, 400, 800]
        rng = random.Random(5)
        ys = [x**0.4 * rng.uniform(0.9, 1.1) for x in xs]
        a = fit_exponent(xs, ys, resamples=100, seed=11)
        b = fit_exponent(xs, ys, resamples=100, seed=11)
        assert a == b

    def test_different_seed_same_point_estimate(self):
        xs = [100, 200, 400, 800]
        rng = random.Random(6)
        ys = [x**0.4 * rng.uniform(0.9, 1.1) for x in xs]
        a = fit_exponent(xs, ys, resamples=100, seed=1)
        b = fit_exponent(xs, ys, resamples=100, seed=2)
        assert a.slope == b.slope  # bootstrap only moves the CI


class TestSerialization:
    def test_round_trip(self):
        fit = fit_exponent([10, 20, 40], [3, 4, 6], resamples=25, seed=4)
        assert ExponentFit.from_dict(fit.to_dict()) == fit

    def test_ci_always_covers_point_estimate(self):
        fit = fit_exponent([10, 20, 40, 80], [1, 9, 2, 30], resamples=50, seed=9)
        assert fit.ci_low <= fit.slope <= fit.ci_high
        assert fit.covers(fit.slope)

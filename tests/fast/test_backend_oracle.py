"""The vectorized backend's correctness oracle: the cost-model path.

Contract (DESIGN.md §12): for every query the vectorized numpy backend must
return the *same objects in the same order* as the scalar cost-model path
and charge the *same cost-model units in every category*.  The scalar path
is the oracle — these tests sweep both paths over the benchmark workload
families (zipf, planted, disjoint-pair — the Table-1 rows), seeds, budgets,
and sharded/unsharded serving, and demand byte-identical sorted object-id
sets plus identical cost snapshots wherever a single index runs both paths.
"""

import random

import pytest

from repro.analysis.runner import analyze_paths
from repro.core.baselines import KeywordsOnlyIndex
from repro.core.lc_kw import LcKwIndex
from repro.core.srp_kw import SrpKwIndex
from repro.costmodel import CATEGORIES, CostCounter
from repro.dataset import Dataset, make_objects
from repro.errors import ValidationError
from repro.fast import ArrayStore, VectorizedBackend, validate_backend
from repro.geometry.halfspaces import rect_to_halfspaces
from repro.geometry.rectangles import Rect
from repro.service import QueryEngine, ShardedQueryEngine
from repro.trace import Tracer
from repro.workloads.generators import (
    WorkloadConfig,
    disjoint_pair_dataset,
    planted_dataset,
    zipf_dataset,
)

#: The benchmark workload families the sweep runs over (Table-1 rows).
WORKLOADS = ("zipf", "planted", "disjoint")


def workload_dataset(name: str, seed: int, num_objects: int = 160) -> Dataset:
    if name == "zipf":
        config = WorkloadConfig(
            num_objects=num_objects, dim=2, vocabulary=16,
            doc_min=1, doc_max=4, zipf_s=1.0, seed=seed,
        )
        return zipf_dataset(config)
    if name == "planted":
        return planted_dataset(
            num_objects, 2, keywords=[1, 2], planted_fraction=0.1,
            seed=seed, vocabulary=16,
        )
    return disjoint_pair_dataset(num_objects, dim=2, seed=seed)


def random_rect(rng, span: float = 10.0) -> Rect:
    a, b = sorted([rng.uniform(-1, span + 1), rng.uniform(-1, span + 1)])
    c, d = sorted([rng.uniform(-1, span + 1), rng.uniform(-1, span + 1)])
    return Rect((a, c), (b, d))


def bounding_span(dataset: Dataset) -> float:
    return max(max(obj.point) for obj in dataset.objects)


def assert_same_answer_and_cost(scalar_pair, vectorized_pair, context=()):
    """Identical result order *and* identical per-category cost charges."""
    (scalar_result, scalar_counter) = scalar_pair
    (vector_result, vector_counter) = vectorized_pair
    assert [o.oid for o in scalar_result] == [o.oid for o in vector_result], context
    assert scalar_counter.snapshot() == vector_counter.snapshot(), (
        context, scalar_counter.snapshot(), vector_counter.snapshot()
    )


class TestValidateBackend:
    def test_known_backends(self):
        assert validate_backend("cost_model") == "cost_model"
        assert validate_backend("vectorized") == "vectorized"
        assert validate_backend("auto", allow_auto=True) == "auto"

    def test_auto_rejected_for_indexes(self):
        with pytest.raises(ValidationError):
            validate_backend("auto")

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            validate_backend("gpu")


class TestKeywordsOnlyOracle:
    """KeywordsOnlyIndex: the tightest oracle — order and cost must match."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", range(3))
    def test_rect_sweep(self, workload, seed):
        dataset = workload_dataset(workload, seed)
        span = bounding_span(dataset)
        rng = random.Random(seed + 100)
        scalar = KeywordsOnlyIndex(dataset)
        vectorized = KeywordsOnlyIndex(dataset, backend="vectorized")
        for _ in range(12):
            rect = random_rect(rng, span)
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            c1, c2 = CostCounter(), CostCounter()
            assert_same_answer_and_cost(
                (scalar.query_rect(rect, words, c1), c1),
                (vectorized.query_rect(rect, words, c2), c2),
                (workload, seed, rect, words),
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_halfspace_region_sweep(self, seed):
        dataset = workload_dataset("zipf", seed)
        span = bounding_span(dataset)
        rng = random.Random(seed + 200)
        scalar = KeywordsOnlyIndex(dataset)
        vectorized = KeywordsOnlyIndex(dataset, backend="vectorized")
        for _ in range(10):
            rect = random_rect(rng, span)
            constraints = list(rect_to_halfspaces(rect.lo, rect.hi))
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            c1, c2 = CostCounter(), CostCounter()
            assert_same_answer_and_cost(
                (scalar.query_constraints(constraints, words, c1), c1),
                (vectorized.query_constraints(constraints, words, c2), c2),
                (seed, rect, words),
            )

    def test_empty_result_query(self):
        dataset = workload_dataset("zipf", 0)
        rect = Rect((-5.0, -5.0), (-4.0, -4.0))  # outside every point
        c1, c2 = CostCounter(), CostCounter()
        assert_same_answer_and_cost(
            (KeywordsOnlyIndex(dataset).query_rect(rect, [1, 2], c1), c1),
            (
                KeywordsOnlyIndex(dataset, backend="vectorized").query_rect(
                    rect, [1, 2], c2
                ),
                c2,
            ),
        )

    def test_absent_keyword_short_circuits_identically(self):
        dataset = workload_dataset("zipf", 0)
        c1, c2 = CostCounter(), CostCounter()
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        assert_same_answer_and_cost(
            (KeywordsOnlyIndex(dataset).query_rect(rect, [1, 9999], c1), c1),
            (
                KeywordsOnlyIndex(dataset, backend="vectorized").query_rect(
                    rect, [1, 9999], c2
                ),
                c2,
            ),
        )

    def test_single_object_dataset(self):
        dataset = Dataset(make_objects([(1.0, 1.0)], [[1, 2]]))
        for rect in (Rect((0.0, 0.0), (2.0, 2.0)), Rect((3.0, 3.0), (4.0, 4.0))):
            c1, c2 = CostCounter(), CostCounter()
            assert_same_answer_and_cost(
                (KeywordsOnlyIndex(dataset).query_rect(rect, [1, 2], c1), c1),
                (
                    KeywordsOnlyIndex(dataset, backend="vectorized").query_rect(
                        rect, [1, 2], c2
                    ),
                    c2,
                ),
            )

    def test_duplicate_keywords(self):
        dataset = workload_dataset("zipf", 1)
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        c1, c2 = CostCounter(), CostCounter()
        assert_same_answer_and_cost(
            (KeywordsOnlyIndex(dataset).query_rect(rect, [2, 2, 2], c1), c1),
            (
                KeywordsOnlyIndex(dataset, backend="vectorized").query_rect(
                    rect, [2, 2, 2], c2
                ),
                c2,
            ),
        )

    def test_zero_area_rect(self):
        # A degenerate Rect(p, p) is a closed point query; both paths use
        # closed lo <= x <= hi comparisons.
        dataset = Dataset(make_objects([(1.0, 2.0), (3.0, 4.0)], [[1, 2], [1, 2]]))
        rect = Rect((1.0, 2.0), (1.0, 2.0))
        c1, c2 = CostCounter(), CostCounter()
        scalar = KeywordsOnlyIndex(dataset).query_rect(rect, [1, 2], c1)
        vector = KeywordsOnlyIndex(dataset, backend="vectorized").query_rect(
            rect, [1, 2], c2
        )
        assert [o.oid for o in scalar] == [o.oid for o in vector] == [0]
        assert c1.snapshot() == c2.snapshot()

    def test_budget_raise_outcome_matches(self):
        # Cumulative totals are identical, so a budget raises on exactly the
        # same queries.  Only the *recorded overshoot* may differ (a batch
        # charge lands whole before the check), so totals are compared only
        # on served queries.
        from repro.errors import BudgetExceeded

        dataset = workload_dataset("zipf", 2)
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        for budget in (1, 5, 50, 100000):
            outcomes = []
            for backend in ("cost_model", "vectorized"):
                index = KeywordsOnlyIndex(dataset, backend=backend)
                counter = CostCounter(budget=budget)
                try:
                    index.query_rect(rect, [1, 2], counter)
                    outcomes.append(("served", counter.total))
                except BudgetExceeded:
                    outcomes.append(("exceeded", None))
            assert outcomes[0] == outcomes[1], (budget, outcomes)

    def test_pickle_roundtrip_drops_arrays_keeps_backend(self):
        import pickle

        index = KeywordsOnlyIndex(workload_dataset("zipf", 0), backend="vectorized")
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        before = [o.oid for o in index.query_rect(rect, [1, 2])]
        clone = pickle.loads(pickle.dumps(index))
        assert clone.backend == "vectorized"
        assert clone._fast is None  # derived state was dropped
        assert [o.oid for o in clone.query_rect(rect, [1, 2])] == before


class TestLcSrpOracle:
    @pytest.mark.parametrize("seed", range(2))
    def test_lc_kw_single_constraint_and_simplex(self, seed):
        dataset = workload_dataset("zipf", seed, num_objects=80)
        span = bounding_span(dataset)
        rng = random.Random(seed + 300)
        scalar = LcKwIndex(dataset, k=2)
        vectorized = LcKwIndex(dataset, k=2, backend="vectorized")
        for _ in range(6):
            rect = random_rect(rng, span)
            constraints = list(rect_to_halfspaces(rect.lo, rect.hi))
            words = rng.sample(range(1, 9), 2)
            for subset in (constraints[:1], constraints):  # 1 vs 4 constraints
                c1, c2 = CostCounter(), CostCounter()
                assert_same_answer_and_cost(
                    (scalar.query(subset, words, c1), c1),
                    (vectorized.query(subset, words, c2), c2),
                    (seed, rect, words, len(subset)),
                )

    @pytest.mark.parametrize("seed", range(2))
    def test_srp_kw_ball_queries(self, seed):
        dataset = workload_dataset("zipf", seed, num_objects=80)
        span = bounding_span(dataset)
        rng = random.Random(seed + 400)
        scalar = SrpKwIndex(dataset, k=2)
        vectorized = SrpKwIndex(dataset, k=2, backend="vectorized")
        for _ in range(6):
            center = (rng.uniform(0, span), rng.uniform(0, span))
            radius = rng.uniform(0.1, span / 2)
            words = rng.sample(range(1, 9), 2)
            c1, c2 = CostCounter(), CostCounter()
            assert_same_answer_and_cost(
                (scalar.query(center, radius, words, c1), c1),
                (vectorized.query(center, radius, words, c2), c2),
                (seed, center, radius, words),
            )

    def test_srp_kw_zero_radius(self):
        dataset = Dataset(make_objects([(1.0, 2.0), (3.0, 4.0)], [[1, 2], [1, 2]]))
        c1, c2 = CostCounter(), CostCounter()
        scalar = SrpKwIndex(dataset, k=2).query((1.0, 2.0), 0.0, [1, 2], c1)
        vector = SrpKwIndex(dataset, k=2, backend="vectorized").query(
            (1.0, 2.0), 0.0, [1, 2], c2
        )
        assert [o.oid for o in scalar] == [o.oid for o in vector] == [0]
        assert c1.snapshot() == c2.snapshot()


class TestEngineSweep:
    """The full differential matrix: workloads x seeds x budgets x sharding."""

    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("seed", range(2))
    def test_unsharded_backends_agree(self, workload, seed):
        dataset = workload_dataset(workload, seed)
        span = bounding_span(dataset)
        engines = {
            backend: QueryEngine(dataset, max_k=3, cache_size=0, backend=backend)
            for backend in ("cost_model", "vectorized", "auto")
        }
        rng = random.Random(seed + 500)
        for _ in range(8):
            rect = random_rect(rng, span)
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            for budget in (None, 4096):
                answers = {
                    backend: sorted(
                        o.oid for o in engine.query(rect, words, budget=budget)
                    )
                    for backend, engine in engines.items()
                }
                oracle = answers["cost_model"]
                assert answers["vectorized"] == oracle, (workload, seed, rect, words, budget)
                assert answers["auto"] == oracle, (workload, seed, rect, words, budget)

    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded_backends_agree(self, shards):
        for workload in WORKLOADS:
            dataset = workload_dataset(workload, seed=0)
            span = bounding_span(dataset)
            oracle_engine = ShardedQueryEngine(
                dataset, shards=shards, max_k=3, cache_size=0
            )
            fast_engine = ShardedQueryEngine(
                dataset, shards=shards, max_k=3, cache_size=0, backend="vectorized"
            )
            assert fast_engine.backend == "vectorized"
            assert all(e.backend == "vectorized" for e in fast_engine.shard_engines)
            rng = random.Random(600)
            for _ in range(6):
                rect = random_rect(rng, span)
                words = rng.sample(range(1, 9), rng.randint(1, 3))
                for budget in (None, 4096):
                    want = sorted(
                        o.oid for o in oracle_engine.query(rect, words, budget=budget)
                    )
                    got = sorted(
                        o.oid for o in fast_engine.query(rect, words, budget=budget)
                    )
                    assert got == want, (workload, shards, rect, words, budget)

    def test_record_reports_resolved_backend(self):
        dataset = workload_dataset("zipf", 0)
        engine = QueryEngine(dataset, max_k=2, cache_size=0, backend="vectorized")
        engine.query(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2])
        record = engine.last_record
        if record.strategy == "keywords_only":
            assert record.backend == "vectorized"
        assert record.to_dict()["backend"] == record.backend

    def test_auto_resolves_from_metrics_history(self):
        # auto vectorizes intersection-heavy queries (candidate estimate at
        # least AUTO_MIN_CANDIDATES and at least half the running mean).
        dataset = workload_dataset("zipf", 3, num_objects=400)
        engine = QueryEngine(dataset, max_k=2, cache_size=0, backend="auto")
        rare = max(dataset.vocabulary)  # Zipf tail: tiny posting list
        common = min(dataset.vocabulary)
        rect = Rect((0.0, 0.0), (bounding_span(dataset),) * 2)
        engine.query(Rect(rect.lo, rect.hi), [common])
        assert engine.last_record.backend == "vectorized"
        engine.query(Rect(rect.lo, rect.hi), [rare])
        assert engine.last_record.backend == "cost_model"
        snapshot = engine.stats()["metrics"]
        assert snapshot["counters"].get("backend_vectorized_total", 0) >= 1
        assert snapshot["counters"].get("backend_cost_model_total", 0) >= 1
        assert "auto_candidate_estimate" in snapshot["histograms"]

    def test_vectorized_engine_pickle_roundtrip(self):
        import pickle

        dataset = workload_dataset("zipf", 0)
        engine = QueryEngine(dataset, max_k=2, backend="vectorized")
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        want = sorted(o.oid for o in engine.query(rect, [1, 2]))
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.backend == "vectorized"
        assert sorted(o.oid for o in clone.query(rect, [1, 2])) == want


class TestTraceInvariant:
    def test_vectorized_batch_charges_keep_leaf_sum_invariant(self):
        # Batch-granularity charges must still land inside spans: the span
        # tree's leaf costs account for every charged unit, per category.
        dataset = workload_dataset("zipf", 0)
        span = bounding_span(dataset)
        engine = QueryEngine(
            dataset, max_k=3, cache_size=0, tracing=True, backend="vectorized"
        )
        rng = random.Random(700)
        checked = 0
        for _ in range(10):
            rect = random_rect(rng, span)
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            engine.query(rect, words)
            record = engine.last_record
            assert record.trace is not None
            leaf_total = _leaf_total(record.trace)
            assert leaf_total == record.cost.get("total", 0), (rect, words)
            checked += 1
        assert checked == 10

    def test_traced_vectorized_store_matches_untraced(self):
        # The tracer hook must not change what the fast path charges.
        dataset = workload_dataset("zipf", 1)
        store = ArrayStore(dataset)
        plain = CostCounter()
        store.intersect([1, 2], plain)
        traced = CostCounter()
        traced.tracer = Tracer()
        store.intersect([1, 2], traced)
        traced.tracer.finish()
        assert plain.snapshot() == traced.snapshot()


def _leaf_total(span_dict) -> int:
    children = span_dict.get("children") or []
    if not children:
        return sum(span_dict.get("costs", {}).get(c, 0) for c in CATEGORIES)
    return sum(_leaf_total(child) for child in children)


class TestReprolint:
    def test_fast_package_is_lint_clean(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        findings = analyze_paths([root / "src" / "repro" / "fast"], root=root)
        assert findings == [], [str(f) for f in findings]


class TestVectorizedBackendUnit:
    def test_rejects_empty_keywords(self):
        backend = VectorizedBackend(workload_dataset("zipf", 0))
        with pytest.raises(ValidationError):
            backend.query_rect(Rect((0.0, 0.0), (1.0, 1.0)), [])

    def test_store_intersection_order_is_oid_sorted(self):
        dataset = workload_dataset("zipf", 0)
        store = ArrayStore(dataset)
        oids = store.intersect([1, 2], CostCounter())
        assert list(oids) == sorted(oids)

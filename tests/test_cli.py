"""Unit tests for repro.cli."""

import json

import pytest

from repro.cli import build_parser, load_jsonl_dataset, main
from repro.errors import ValidationError


@pytest.fixture
def dataset_file(tmp_path, rng):
    path = tmp_path / "data.jsonl"
    with open(path, "w") as handle:
        for _ in range(120):
            record = {
                "point": [rng.uniform(0, 100), rng.uniform(0, 10)],
                "doc": rng.sample(range(1, 7), rng.randint(1, 3)),
            }
            handle.write(json.dumps(record) + "\n")
    return path


class TestDatasetLoading:
    def test_loads_records(self, dataset_file):
        ds = load_jsonl_dataset(str(dataset_file))
        assert len(ds) == 120
        assert ds.dim == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"point": [1.0], "doc": [1]}\n\n{"point": [2.0], "doc": [2]}\n')
        assert len(load_jsonl_dataset(str(path))) == 2

    def test_bad_record_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"point": [1.0], "doc": [1]}\n{"nope": true}\n')
        with pytest.raises(ValidationError, match="bad.jsonl:2"):
            load_jsonl_dataset(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValidationError):
            load_jsonl_dataset(str(path))


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(line) for line in out.strip().splitlines()]
        assert all("oid" in rec for rec in lines)

    def test_build_query_round_trip(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "idx.bin"
        assert main(["build", str(dataset_file), str(index_path), "--kind", "orp"]) == 0
        assert index_path.exists()
        capsys.readouterr()
        code = main(
            [
                "query",
                str(index_path),
                "--rect", "0", "0", "100", "10",
                "--keywords", "1", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            record = json.loads(line)
            assert {1, 2} <= set(record["doc"])

    def test_info(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "idx.bin"
        main(["build", str(dataset_file), str(index_path)])
        capsys.readouterr()
        assert main(["info", str(index_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["class"] == "OrpKwIndex"
        assert info["k"] == 2

    def test_nearest(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "nn.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "linf-nn"])
        capsys.readouterr()
        code = main(
            [
                "nearest",
                str(index_path),
                "--point", "50", "5",
                "--t", "3",
                "--keywords", "1", "2",
            ]
        )
        assert code == 0

    def test_wrong_index_kind_is_a_clean_error(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "nn.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "linf-nn"])
        capsys.readouterr()
        code = main(
            ["query", str(index_path), "--rect", "0", "0", "1", "1", "--keywords", "1", "2"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_query_without_shape_is_an_error(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "idx.bin"
        main(["build", str(dataset_file), str(index_path)])
        capsys.readouterr()
        assert main(["query", str(index_path), "--keywords", "1", "2"]) == 2

    def test_ball_query(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "srp.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "srp"])
        capsys.readouterr()
        code = main(
            ["query", str(index_path), "--ball", "50", "5", "20", "--keywords", "1", "2"]
        )
        assert code == 0

    def test_parser_rejects_unknown_kind(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["build", "a", "b", "--kind", "nonsense"])


class TestRectangleIndexCommands:
    @pytest.fixture
    def rect_file(self, tmp_path, rng):
        path = tmp_path / "rects.jsonl"
        with open(path, "w") as handle:
            for _ in range(60):
                lo = rng.uniform(0, 10)
                handle.write(
                    json.dumps(
                        {
                            "lo": [lo],
                            "hi": [lo + rng.uniform(0, 2)],
                            "doc": rng.sample(range(1, 6), rng.randint(1, 3)),
                        }
                    )
                    + "\n"
                )
        return path

    def test_build_and_query_rr(self, rect_file, tmp_path, capsys):
        index_path = tmp_path / "rr.bin"
        assert main(["build", str(rect_file), str(index_path), "--kind", "rr"]) == 0
        capsys.readouterr()
        code = main(
            ["query", str(index_path), "--rect", "2", "5", "--keywords", "1", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            record = json.loads(line)
            assert record["lo"][0] <= 5.0 and record["hi"][0] >= 2.0
            assert {1, 2} <= set(record["doc"])

    def test_bad_rectangle_record(self, tmp_path):
        from repro.cli import load_jsonl_rectangles
        from repro.errors import ValidationError as VE

        path = tmp_path / "bad.jsonl"
        path.write_text('{"lo": [1.0], "doc": [1]}\n')
        with pytest.raises(VE, match="bad.jsonl:1"):
            load_jsonl_rectangles(str(path))


class TestEngineCommands:
    @pytest.fixture
    def queries_file(self, tmp_path, rng):
        path = tmp_path / "queries.jsonl"
        queries = []
        for _ in range(6):
            a, b = sorted([rng.uniform(0, 100), rng.uniform(0, 100)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            queries.append(
                {"rect": [a, c, b, d], "keywords": rng.sample(range(1, 7), 2)}
            )
        with open(path, "w") as handle:
            for query in queries + queries:  # repeated: second half hits cache
                handle.write(json.dumps(query) + "\n")
        return path

    def test_build_batch_stats_round_trip(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        index_path = tmp_path / "engine.bin"
        code = main(
            [
                "build", str(dataset_file), str(index_path),
                "--kind", "engine", "--k", "3",
            ]
        )
        assert code == 0
        capsys.readouterr()

        code = main(
            [
                "batch", str(index_path),
                "--queries", str(queries_file),
                "--budget", "64", "--save",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        traces = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(traces) == 12
        assert all("strategy" in t and "cost" in t for t in traces)
        assert sum(1 for t in traces if t["cache"] == "hit") >= 6
        assert "12 queries" in captured.err

    def test_stats_after_saved_batch(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        index_path = tmp_path / "engine.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "engine"])
        main(["batch", str(index_path), "--queries", str(queries_file), "--save"])
        capsys.readouterr()
        assert main(["stats", str(index_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["queries"] == 12
        assert stats["cache"]["hits"] >= 6

    def test_serve_matches_batch_results(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        """The async serve path reports the same result counts as batch."""
        index_path = tmp_path / "engine.bin"
        main(
            [
                "build", str(dataset_file), str(index_path),
                "--kind", "sharded", "--shards", "2", "--k", "3",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "batch", str(index_path),
                "--queries", str(queries_file), "--budget", "64",
            ]
        )
        assert code == 0
        batch_counts = [
            json.loads(line)["result_count"]
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        code = main(
            [
                "serve", str(index_path),
                "--queries", str(queries_file),
                "--budget", "64", "--concurrency", "2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        served = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(served) == 12
        assert all(not entry["shed"] for entry in served)
        assert [entry["result_count"] for entry in served] == batch_counts
        assert "12 served" in captured.err

    def test_serve_sheds_above_inflight_bound(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        index_path = tmp_path / "engine.bin"
        main(
            [
                "build", str(dataset_file), str(index_path),
                "--kind", "engine", "--k", "3",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "serve", str(index_path),
                "--queries", str(queries_file),
                "--budget", "64", "--max-inflight-cost", "64",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        served = [json.loads(line) for line in captured.out.strip().splitlines()]
        shed = [entry for entry in served if entry["shed"]]
        assert shed and all(entry["reason"] == "shed:admission" for entry in shed)
        assert "shed" in captured.err

    def test_batch_requires_engine_index(self, dataset_file, tmp_path, capsys):
        index_path = tmp_path / "orp.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "orp"])
        queries = tmp_path / "q.jsonl"
        queries.write_text('{"rect": [0, 0, 1, 1], "keywords": [1]}\n')
        assert main(["batch", str(index_path), "--queries", str(queries)]) == 2
        assert "expected a QueryEngine" in capsys.readouterr().err

    def test_bad_query_record_reports_line(self, tmp_path):
        from repro.cli import load_jsonl_queries

        path = tmp_path / "bad.jsonl"
        path.write_text('{"rect": [0, 0, 1, 1], "keywords": [1]}\n{"rect": "x"}\n')
        with pytest.raises(ValidationError, match="bad.jsonl:2"):
            load_jsonl_queries(str(path))

    def test_sharded_build_batch_stats_round_trip(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        index_path = tmp_path / "sharded.bin"
        code = main(
            [
                "build", str(dataset_file), str(index_path),
                "--kind", "sharded", "--shards", "3", "--k", "3",
            ]
        )
        assert code == 0
        assert "3 shard(s)" in capsys.readouterr().err

        code = main(
            [
                "batch", str(index_path),
                "--queries", str(queries_file),
                "--budget", "64", "--save",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        traces = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(traces) == 12
        served = [t for t in traces if t["cache"] == "miss"]
        assert served and all(t["strategy"] == "sharded" for t in served)
        assert all(len(t["shards"]) == 3 for t in served)
        assert sum(1 for t in traces if t["cache"] == "hit") >= 6

        assert main(["stats", str(index_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["queries"] == 12
        assert stats["shards"]["count"] == 3
        assert sum(stats["shards"]["sizes"]) == 120

    def test_sharded_and_engine_batches_agree(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        engine_path = tmp_path / "engine.bin"
        sharded_path = tmp_path / "sharded.bin"
        main(["build", str(dataset_file), str(engine_path), "--kind", "engine"])
        main(
            [
                "build", str(dataset_file), str(sharded_path),
                "--kind", "sharded", "--shards", "4",
            ]
        )
        capsys.readouterr()
        main(["batch", str(engine_path), "--queries", str(queries_file), "--results"])
        plain = capsys.readouterr().out
        main(["batch", str(sharded_path), "--queries", str(queries_file), "--results"])
        sharded = capsys.readouterr().out

        def result_counts(output):
            return [
                json.loads(line)["result_count"]
                for line in output.strip().splitlines()
                if "result_count" in json.loads(line)
            ]

        assert result_counts(plain) == result_counts(sharded)

    def test_batch_results_flag_prints_matches(
        self, dataset_file, queries_file, tmp_path, capsys
    ):
        index_path = tmp_path / "engine.bin"
        main(["build", str(dataset_file), str(index_path), "--kind", "engine"])
        capsys.readouterr()
        main(
            [
                "batch", str(index_path),
                "--queries", str(queries_file), "--results",
            ]
        )
        lines = [json.loads(l) for l in capsys.readouterr().out.strip().splitlines()]
        assert any("oid" in record for record in lines) or all(
            record["result_count"] == 0 for record in lines if "result_count" in record
        )


class TestTelemetryCommands:
    """`metrics` / `events` / `top` + `serve --telemetry-dir`."""

    @pytest.fixture
    def queries_file(self, tmp_path, rng):
        path = tmp_path / "queries.jsonl"
        with open(path, "w") as handle:
            for _ in range(10):
                a, b = sorted([rng.uniform(0, 100), rng.uniform(0, 100)])
                c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
                query = {"rect": [a, c, b, d], "keywords": rng.sample(range(1, 7), 2)}
                handle.write(json.dumps(query) + "\n")
        return path

    @pytest.fixture
    def engine_path(self, dataset_file, queries_file, tmp_path, capsys):
        path = tmp_path / "engine.bin"
        main(["build", str(dataset_file), str(path), "--kind", "engine", "--k", "3"])
        main(
            [
                "batch", str(path),
                "--queries", str(queries_file), "--budget", "256", "--save",
            ]
        )
        capsys.readouterr()
        return path

    def test_metrics_renders_openmetrics(self, engine_path, capsys):
        assert main(["metrics", str(engine_path)]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "repro_queries_total 10" in out
        assert 'repro_cost_total_bucket{le="+Inf"}' in out

    def test_metrics_custom_namespace(self, engine_path, capsys):
        assert main(["metrics", str(engine_path), "--namespace", "svc"]) == 0
        assert "svc_queries_total" in capsys.readouterr().out

    def test_metrics_rejects_non_engine_index(self, dataset_file, tmp_path, capsys):
        path = tmp_path / "orp.bin"
        main(["build", str(dataset_file), str(path), "--kind", "orp"])
        capsys.readouterr()
        assert main(["metrics", str(path)]) == 2

    def test_events_replays_workload_as_jsonl(
        self, engine_path, queries_file, capsys
    ):
        code = main(
            ["events", str(engine_path), "--queries", str(queries_file)]
        )
        assert code == 0
        captured = capsys.readouterr()
        events = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert len(events) == 10
        assert all(event["kind"] == "query_finish" for event in events)
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        assert "10 event(s) emitted" in captured.err

    def test_events_kind_filter(self, engine_path, queries_file, capsys):
        code = main(
            [
                "events", str(engine_path),
                "--queries", str(queries_file),
                "--kind", "query_degraded",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert all(
            json.loads(line)["kind"] == "query_degraded"
            for line in out.splitlines()
        )

    def test_top_renders_quantiles_and_planner_stats(self, engine_path, capsys):
        assert main(["top", str(engine_path)]) == 0
        out = capsys.readouterr().out
        assert "histogram quantiles" in out
        assert "cost_total" in out
        assert "planner stats" in out

    def test_top_json_format(self, engine_path, capsys):
        assert main(["top", str(engine_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [row["name"] for row in payload["histograms"]]
        assert "cost_total" in names
        assert payload["planner"]["schema"] == 1
        assert payload["planner"]["strategies"]  # at least one cell

    def test_serve_telemetry_dir_writes_artifacts(
        self, engine_path, queries_file, tmp_path, capsys
    ):
        telemetry_dir = tmp_path / "telemetry"
        code = main(
            [
                "serve", str(engine_path),
                "--queries", str(queries_file),
                "--budget", "256",
                "--telemetry-dir", str(telemetry_dir),
            ]
        )
        assert code == 0
        capsys.readouterr()
        metrics_text = (telemetry_dir / "metrics.prom").read_text()
        assert metrics_text.endswith("# EOF\n")
        event_lines = (
            (telemetry_dir / "events.jsonl").read_text().strip().splitlines()
        )
        assert event_lines and all(json.loads(line)["kind"] for line in event_lines)
        stats = json.loads((telemetry_dir / "stats.json").read_text())
        assert "sampler" in stats and "events" in stats
        traces = (telemetry_dir / "traces.jsonl").read_text().strip().splitlines()
        assert traces  # the slowest queries were retained
        assert all("why" in json.loads(line) for line in traces)

    def test_serve_slo_flags_arm_the_monitor(
        self, engine_path, queries_file, tmp_path, capsys
    ):
        telemetry_dir = tmp_path / "telemetry"
        code = main(
            [
                "serve", str(engine_path),
                "--queries", str(queries_file),
                "--budget", "256",
                "--max-inflight-cost", "10000",
                "--slo-p99-cost", "1",
                "--slo-window", "4",
                "--telemetry-dir", str(telemetry_dir),
            ]
        )
        assert code == 0
        capsys.readouterr()
        stats = json.loads((telemetry_dir / "stats.json").read_text())
        assert stats["slo"]["targets"]["p99_cost_target"] == 1
        assert stats["slo"]["observed"] == 10

"""Regression tests for the cost-accounting fixes reprolint (R1-R3) surfaced.

Each test pins one fix from the repo-wide charge-site audit:

* uncharged post-filters and tombstone tests now charge the counter for the
  work they do (R1 true positives);
* budgeted emptiness probes fold into the caller's counter *per category*
  via ``CostCounter.merge`` instead of lumping the whole total into
  ``objects_examined``;
* ``InvertedIndex.posting_list`` returns a copy, so callers cannot poison
  the index (R3 true positive).

The differential tests compare a fixed entry point against a re-run of its
inner query alone: the delta is exactly the formerly-uncharged work.
"""

import random

import repro
from repro.core.baselines import KeywordsOnlyIndex
from repro.core.dynamic import DynamicOrpKw
from repro.core.lc_kw import LcKwIndex
from repro.core.orp_kw import OrpKwIndex
from repro.core.srp_kw import SrpKwIndex
from repro.costmodel import CostCounter
from repro.geometry.lifting import lift_sphere_squared
from repro.geometry.rectangles import Rect
from repro.geometry.regions import ConvexRegion
from repro.ksi.inverted import InvertedIndex

from helpers import random_dataset


class TestUnchargedTraversals:
    """R1 fixes: every candidate examined on a query path costs a unit."""

    def test_dynamic_query_charges_tombstone_filter(self):
        """DynamicOrpKw.query tests each bucket candidate against the
        tombstone set but used to charge nothing for it."""
        rng = random.Random(7)
        dyn = DynamicOrpKw(k=2, dim=2)
        oids = [
            dyn.insert((rng.uniform(0, 10), rng.uniform(0, 10)), [1, 2])
            for _ in range(48)
        ]
        for oid in oids[::5]:
            dyn.delete(oid)
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        outer = CostCounter()
        result = dyn.query(rect, [1, 2], outer)
        assert result  # the scenario must actually exercise the filter

        # Re-run the same bucket queries alone: the delta is exactly one
        # structure probe per candidate (including tombstoned ones).
        inner = CostCounter()
        candidates = []
        for bucket in dyn._buckets:
            if bucket is not None:
                candidates.extend(bucket.query(rect, [1, 2], inner))
        assert len(candidates) > len(result)  # tombstones were filtered
        assert outer.total == inner.total + len(candidates)
        assert (
            outer["structure_probes"]
            == inner["structure_probes"] + len(candidates)
        )

    def test_keywords_only_predicate_filter_charged(self):
        """KeywordsOnlyIndex.query_predicate evaluates the geometric
        predicate on every keyword match; each evaluation is a comparison."""
        ds = random_dataset(random.Random(11), 60)
        index = KeywordsOnlyIndex(ds)
        words = [1, 2]
        matches = index._inverted.matching_objects(words, CostCounter())
        assert matches

        counter = CostCounter()
        rect = Rect((0.0, 0.0), (5.0, 5.0))
        index.query_rect(rect, words, counter)
        # matching_objects itself charges no comparisons, so the entire
        # comparison count is the (formerly free) post-filter.
        assert counter["comparisons"] == len(matches)

    def test_keywords_only_nearest_charged(self):
        ds = random_dataset(random.Random(11), 60)
        index = KeywordsOnlyIndex(ds)
        words = [1, 2]
        matches = index._inverted.matching_objects(words, CostCounter())
        assert matches

        counter = CostCounter()
        dist = lambda a, b: sum((x - y) ** 2 for x, y in zip(a, b))  # noqa: E731
        got = index.nearest((5.0, 5.0), 3, words, dist, counter)
        assert got
        assert counter["comparisons"] == len(matches)

    def test_srp_exact_distance_filter_charged(self):
        """SrpKwIndex.query_squared re-checks every lifted candidate with an
        exact distance computation; that work is now charged."""
        ds = random_dataset(random.Random(5), 80, integer_coords=True)
        index = SrpKwIndex(ds, k=2)
        center, r_sq, words = (5.0, 5.0), 16.0, [1, 2]

        outer = CostCounter()
        index.query_squared(center, r_sq, words, outer)

        inner = CostCounter()
        found = index._sp.query_region(
            ConvexRegion([lift_sphere_squared(center, r_sq)]), words, inner
        )
        assert found
        assert outer["comparisons"] == inner["comparisons"] + len(found)

    def test_lc_constraint_filter_charged(self):
        """LcKwIndex.query's single-constraint branch post-filters with
        HalfSpace.contains; one comparison per candidate."""
        ds = random_dataset(random.Random(9), 80)
        index = LcKwIndex(ds, k=2)
        half = repro.HalfSpace((1.0, 0.0), 6.0)  # x <= 6
        words = [1, 2]

        outer = CostCounter()
        index.query([half], words, outer)

        inner = CostCounter()
        found = index._sp.query_region(ConvexRegion([half]), words, inner)
        assert found
        assert outer["comparisons"] == inner["comparisons"] + len(found)


class TestProbeMergePreservesCategories:
    """Budgeted emptiness probes used to lump ``probe.total`` into
    ``objects_examined``, erasing the per-category breakdown.  They now
    ``merge`` the probe, so the caller sees the same total but real
    categories."""

    def test_orp_is_empty_merges_probe(self):
        ds = random_dataset(random.Random(3), 60)
        index = OrpKwIndex(ds, k=2)
        counter = CostCounter()
        index.is_empty(Rect((0.0, 0.0), (10.0, 10.0)), [1, 2], counter)
        assert counter.total > 0
        # A lump would put *everything* under objects_examined; a merge
        # preserves the traversal categories the probe actually charged.
        assert set(counter.counts) != {"objects_examined"}
        assert counter.total == sum(counter.counts.values())

    def test_lc_is_empty_merges_probe(self):
        ds = random_dataset(random.Random(3), 60)
        index = LcKwIndex(ds, k=2)
        counter = CostCounter()
        index.is_empty([repro.HalfSpace((1.0, 0.0), 6.0)], [1, 2], counter)
        assert counter.total > 0
        assert set(counter.counts) != {"objects_examined"}


class TestPostingListEscape:
    """R3 fix: posting_list hands out a copy, not the internal list."""

    def test_posting_list_mutation_does_not_poison_index(self):
        ds = random_dataset(random.Random(2), 40)
        index = InvertedIndex(ds)
        plist = index.posting_list(1)
        assert plist
        before_freq = index.frequency(1)

        plist.append(-999)  # a caller sorting/extending its "view"
        plist.reverse()

        fresh = index.posting_list(1)
        assert -999 not in fresh
        assert fresh == sorted(fresh)
        assert index.frequency(1) == before_freq
        # queries still work against the intact postings
        counter = CostCounter()
        assert index.matching_objects([1], counter) is not None

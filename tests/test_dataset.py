"""Unit tests for repro.dataset."""

import pytest

from repro.dataset import (
    Dataset,
    KeywordObject,
    RectangleObject,
    make_objects,
    validate_query_keywords,
)
from repro.errors import ValidationError


class TestKeywordObject:
    def test_basic_fields(self):
        obj = KeywordObject(oid=3, point=(1.0, 2.0), doc=frozenset({5, 7}))
        assert obj.dim == 2
        assert obj.contains_keywords([5])
        assert obj.contains_keywords([5, 7])
        assert not obj.contains_keywords([5, 6])

    def test_empty_document_rejected(self):
        with pytest.raises(ValidationError):
            KeywordObject(oid=0, point=(0.0,), doc=frozenset())

    def test_empty_point_rejected(self):
        with pytest.raises(ValidationError):
            KeywordObject(oid=0, point=(), doc=frozenset({1}))

    def test_frozen(self):
        obj = KeywordObject(oid=0, point=(0.0,), doc=frozenset({1}))
        with pytest.raises(AttributeError):
            obj.oid = 5


class TestRectangleObject:
    def test_intersection(self):
        rect = RectangleObject(oid=0, lo=(0.0, 0.0), hi=(2.0, 2.0), doc=frozenset({1}))
        assert rect.intersects((1.0, 1.0), (3.0, 3.0))
        assert rect.intersects((2.0, 2.0), (3.0, 3.0))  # touching counts
        assert not rect.intersects((2.1, 0.0), (3.0, 1.0))

    def test_degenerate_rectangle_allowed(self):
        rect = RectangleObject(oid=0, lo=(1.0,), hi=(1.0,), doc=frozenset({1}))
        assert rect.intersects((0.0,), (1.0,))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            RectangleObject(oid=0, lo=(2.0,), hi=(1.0,), doc=frozenset({1}))

    def test_mixed_corner_dims_rejected(self):
        with pytest.raises(ValidationError):
            RectangleObject(oid=0, lo=(0.0, 0.0), hi=(1.0,), doc=frozenset({1}))


class TestMakeObjects:
    def test_assigns_sequential_ids(self):
        objs = make_objects([(0.0,), (1.0,)], [[1], [2]])
        assert [obj.oid for obj in objs] == [0, 1]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            make_objects([(0.0,)], [[1], [2]])

    def test_coerces_coordinates_to_float(self):
        objs = make_objects([(1, 2)], [[1]])
        assert objs[0].point == (1.0, 2.0)


class TestDataset:
    def test_input_size_is_total_doc_mass(self, tiny_dataset):
        # Docs: {1,2},{1,3},{2,3},{1,2,3} -> N = 2+2+2+3 = 9
        assert tiny_dataset.total_doc_size == 9

    def test_vocabulary(self, tiny_dataset):
        assert tiny_dataset.vocabulary == [1, 2, 3]
        assert tiny_dataset.num_keywords == 3

    def test_matching_computes_equation_1(self, tiny_dataset):
        ids = sorted(o.oid for o in tiny_dataset.matching([1, 2]))
        assert ids == [0, 3]

    def test_objects_with_single_keyword(self, tiny_dataset):
        assert sorted(o.oid for o in tiny_dataset.objects_with(3)) == [1, 2, 3]

    def test_weight_helper(self, tiny_dataset):
        assert Dataset.weight(tiny_dataset.objects) == 9
        assert Dataset.weight([]) == 0

    def test_lookup_by_id(self, tiny_dataset):
        assert tiny_dataset[2].point == (6.0, 3.0)

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValidationError):
            Dataset([])

    def test_explicitly_empty_dataset_allowed(self):
        ds = Dataset.empty(2)
        assert len(ds) == 0
        assert ds.dim == 2
        assert ds.total_doc_size == 0
        assert ds.vocabulary == []
        assert ds.matching([1, 2]) == []

    def test_empty_dataset_bad_dim_rejected(self):
        with pytest.raises(ValidationError):
            Dataset.empty(0)

    def test_declared_dim_must_match_objects(self):
        objs = [KeywordObject(oid=0, point=(0.0,), doc=frozenset({1}))]
        with pytest.raises(ValidationError):
            Dataset(objs, dim=2)
        assert Dataset(objs, dim=1).dim == 1

    def test_mixed_dimensions_rejected(self):
        objs = [
            KeywordObject(oid=0, point=(0.0,), doc=frozenset({1})),
            KeywordObject(oid=1, point=(0.0, 1.0), doc=frozenset({1})),
        ]
        with pytest.raises(ValidationError):
            Dataset(objs)

    def test_duplicate_ids_rejected(self):
        objs = [
            KeywordObject(oid=0, point=(0.0,), doc=frozenset({1})),
            KeywordObject(oid=0, point=(1.0,), doc=frozenset({1})),
        ]
        with pytest.raises(ValidationError):
            Dataset(objs)

    def test_iteration_and_len(self, tiny_dataset):
        assert len(tiny_dataset) == 4
        assert len(list(tiny_dataset)) == 4


class TestValidateQueryKeywords:
    def test_accepts_exactly_k_distinct(self):
        assert validate_query_keywords([3, 1], 2) == (3, 1)

    def test_rejects_wrong_count(self):
        with pytest.raises(ValidationError):
            validate_query_keywords([1], 2)
        with pytest.raises(ValidationError):
            validate_query_keywords([1, 2, 3], 2)

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            validate_query_keywords([1, 1], 2)

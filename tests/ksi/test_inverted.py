"""Unit tests for repro.ksi.inverted."""

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.ksi.inverted import InvertedIndex


class TestPostingLists:
    def test_posting_lists_sorted_by_id(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert index.posting_list(1) == [0, 1, 3]
        assert index.posting_list(2) == [0, 2, 3]
        assert index.posting_list(3) == [1, 2, 3]

    def test_unknown_keyword_empty(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert index.posting_list(99) == []
        assert index.frequency(99) == 0

    def test_space_equals_input_size(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert index.space_units == tiny_dataset.total_doc_size


class TestMatching:
    def test_intersection(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        ids = sorted(o.oid for o in index.matching_objects([1, 2]))
        assert ids == [0, 3]

    def test_three_keywords(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        ids = [o.oid for o in index.matching_objects([1, 2, 3])]
        assert ids == [3]

    def test_unknown_keyword_gives_empty(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        assert index.matching_objects([1, 99]) == []

    def test_no_keywords_rejected(self, tiny_dataset):
        # Regression: this used to return the whole dataset at zero charged
        # cost, diverging from MultiKOrpIndex.query's ValidationError.
        index = InvertedIndex(tiny_dataset)
        with pytest.raises(ValidationError):
            index.matching_objects([])

    def test_agrees_with_brute_force(self, rng, small_dataset):
        index = InvertedIndex(small_dataset)
        for _ in range(30):
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            got = sorted(o.oid for o in index.matching_objects(words))
            want = sorted(o.oid for o in small_dataset.matching(words))
            assert got == want

    def test_cost_tracks_shortest_posting_list(self, tiny_dataset):
        index = InvertedIndex(tiny_dataset)
        counter = CostCounter()
        index.matching_objects([1, 2], counter)
        # Shortest posting list has 3 entries.
        assert counter["objects_examined"] == 3

"""Unit tests for repro.ksi.naive."""

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.ksi.naive import NaiveKSI, sets_to_documents


class TestNaiveKSI:
    def test_report(self):
        ksi = NaiveKSI([[1, 2, 3], [2, 3, 4], [3, 4, 5]])
        assert ksi.report([0, 1]) == [2, 3]
        assert ksi.report([0, 1, 2]) == [3]
        assert ksi.report([0, 2]) == [3]

    def test_is_empty(self):
        ksi = NaiveKSI([[1, 2], [3, 4], [2, 3]])
        assert ksi.is_empty([0, 1])
        assert not ksi.is_empty([0, 2])

    def test_input_size(self):
        ksi = NaiveKSI([[1, 2], [3]])
        assert ksi.input_size == 3
        assert ksi.num_sets == 2

    def test_cost_is_smallest_set(self):
        ksi = NaiveKSI([list(range(100)), [1, 2]])
        counter = CostCounter()
        ksi.report([0, 1], counter)
        assert counter["objects_examined"] == 2

    def test_invalid_set_id(self):
        ksi = NaiveKSI([[1], [2]])
        with pytest.raises(ValidationError):
            ksi.report([0, 7])

    def test_empty_family_rejected(self):
        with pytest.raises(ValidationError):
            NaiveKSI([])

    def test_duplicates_inside_sets_collapse(self):
        ksi = NaiveKSI([[1, 1, 2], [2, 2]])
        assert ksi.report([0, 1]) == [2]


class TestSetsToDocuments:
    def test_reduction(self):
        docs = sets_to_documents([[1, 2], [2, 3]])
        assert docs == {
            1: frozenset({0}),
            2: frozenset({0, 1}),
            3: frozenset({1}),
        }

    def test_round_trip_intersection(self, rng):
        """e in S_i ∩ S_j  iff  {i, j} ⊆ e.Doc (the §1.2 equivalence)."""
        sets = [
            [e for e in range(30) if rng.random() < 0.4] or [0] for _ in range(5)
        ]
        docs = sets_to_documents(sets)
        for i in range(5):
            for j in range(i + 1, 5):
                via_docs = sorted(
                    e for e, doc in docs.items() if {i, j} <= doc
                )
                direct = sorted(set(sets[i]) & set(sets[j]))
                assert via_docs == direct

"""Unit tests for repro.ksi.cohen_porat (the KSetIndex)."""

import math

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.ksi.cohen_porat import KSetIndex
from repro.ksi.naive import NaiveKSI


def random_family(rng, num_sets, universe, density):
    sets = [
        [e for e in range(universe) if rng.random() < density] or [0]
        for _ in range(num_sets)
    ]
    return sets


class TestCorrectness:
    def test_small_hand_example(self):
        index = KSetIndex([[1, 2, 3], [2, 3, 4], [3, 5]], k=2)
        assert index.report([0, 1]) == [2, 3]
        assert index.report([0, 2]) == [3]
        assert index.report([1, 2]) == [3]

    def test_k3(self):
        index = KSetIndex([[1, 2], [2, 3], [2, 4]], k=3)
        assert index.report([0, 1, 2]) == [2]

    def test_agrees_with_naive_k2(self, rng):
        for density in (0.1, 0.4):
            sets = random_family(rng, 8, 60, density)
            index = KSetIndex(sets, k=2)
            naive = NaiveKSI(sets)
            for _ in range(25):
                ids = rng.sample(range(8), 2)
                assert index.report(ids) == naive.report(ids)

    def test_agrees_with_naive_k3(self, rng):
        sets = random_family(rng, 7, 50, 0.35)
        index = KSetIndex(sets, k=3)
        naive = NaiveKSI(sets)
        for _ in range(25):
            ids = rng.sample(range(7), 3)
            assert index.report(ids) == naive.report(ids)

    def test_emptiness_agrees(self, rng):
        sets = random_family(rng, 8, 40, 0.2)
        index = KSetIndex(sets, k=2)
        naive = NaiveKSI(sets)
        for _ in range(25):
            ids = rng.sample(range(8), 2)
            assert index.is_empty(ids) == naive.is_empty(ids)


class TestValidation:
    def test_k_below_two_rejected(self):
        with pytest.raises(ValidationError):
            KSetIndex([[1], [2]], k=1)

    def test_wrong_query_arity_rejected(self):
        index = KSetIndex([[1], [2], [3]], k=2)
        with pytest.raises(ValidationError):
            index.report([0])
        with pytest.raises(ValidationError):
            index.report([0, 1, 2])

    def test_duplicate_query_ids_rejected(self):
        index = KSetIndex([[1], [2]], k=2)
        with pytest.raises(ValidationError):
            index.report([1, 1])

    def test_empty_family_rejected(self):
        with pytest.raises(ValidationError):
            KSetIndex([[], []], k=2)


class TestComplexityShape:
    def test_empty_intersection_cost_is_sublinear(self):
        """Disjoint large sets: the combo table kills the query at the root."""
        per = 400
        sets = [[i * per + j for j in range(per)] for i in range(50)]
        index = KSetIndex(sets, k=2)
        counter = CostCounter()
        out = index.report([0, 1], counter)
        assert out == []
        assert counter.total < math.sqrt(index.input_size)

    def test_space_is_linear(self, rng):
        sets = random_family(rng, 20, 2000, 0.05)
        index = KSetIndex(sets, k=2)
        assert index.space_units < 12 * index.input_size

    def test_tree_height_logarithmic(self, rng):
        sets = random_family(rng, 10, 500, 0.2)
        index = KSetIndex(sets, k=2)
        assert index.height() <= 2 * math.log2(index.input_size) + 4

    def test_planted_output_cost_scales_with_out(self):
        """Cost follows sqrt(N)*sqrt(OUT) as planted intersections grow."""
        per = 300
        shared = 64
        sets = []
        base = shared
        for i in range(20):
            sets.append(list(range(shared)) + list(range(base, base + per)))
            base += per
        index = KSetIndex(sets, k=2)
        counter = CostCounter()
        out = index.report([3, 7], counter)
        assert len(out) == shared
        n = index.input_size
        bound = math.sqrt(n) * (1 + math.sqrt(shared))
        assert counter.total <= 12 * bound


class TestThresholdExponentTradeoff:
    """The Kopelowitz-Pettie-Porat smooth trade-off (§2, [38])."""

    def test_custom_exponent_still_correct(self, rng):
        sets = random_family(rng, 8, 60, 0.3)
        naive = NaiveKSI(sets)
        for alpha in (0.3, 0.5, 0.8):
            index = KSetIndex(sets, k=2, threshold_exponent=alpha)
            for _ in range(15):
                ids = rng.sample(range(8), 2)
                assert index.report(ids) == naive.report(ids)

    def test_default_exponent_matches_paper(self):
        index = KSetIndex([[1, 2], [2, 3]], k=2)
        assert index.threshold_exponent == pytest.approx(0.5)
        index3 = KSetIndex([[1, 2], [2, 3], [3]], k=3)
        assert index3.threshold_exponent == pytest.approx(2.0 / 3.0)

    def test_exponent_bounds_enforced(self):
        with pytest.raises(ValidationError):
            KSetIndex([[1], [2]], k=2, threshold_exponent=0.0)
        with pytest.raises(ValidationError):
            KSetIndex([[1], [2]], k=2, threshold_exponent=1.0)

    def test_tradeoff_direction(self):
        """Smaller alpha => more space, cheaper empty-intersection queries."""
        per = 400
        sets = [[i * per + j for j in range(per)] for i in range(20)]
        lo = KSetIndex(sets, k=2, threshold_exponent=0.35)
        hi = KSetIndex(sets, k=2, threshold_exponent=0.75)
        assert lo.space_units >= hi.space_units
        c_lo, c_hi = CostCounter(), CostCounter()
        lo.report([0, 1], c_lo)
        hi.report([0, 1], c_hi)
        assert c_lo.total <= c_hi.total + 8

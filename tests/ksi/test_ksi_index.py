"""Unit tests for repro.ksi.ksi_index (the §1.2 reduction to ORP-KW)."""

import math

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.ksi.ksi_index import OrpBackedKsi
from repro.ksi.naive import NaiveKSI


class TestOrpBackedKsi:
    def test_hand_example(self):
        ksi = OrpBackedKsi([[1, 2, 3], [2, 3, 4], [5]], k=2)
        assert ksi.report([0, 1]) == [2, 3]
        assert ksi.report([0, 2]) == []

    def test_agrees_with_naive(self, rng):
        sets = [
            [e for e in range(40) if rng.random() < 0.3] or [0] for _ in range(6)
        ]
        backed = OrpBackedKsi(sets, k=2)
        naive = NaiveKSI(sets)
        for _ in range(20):
            ids = rng.sample(range(6), 2)
            assert backed.report(ids) == naive.report(ids)

    def test_k3(self, rng):
        sets = [
            [e for e in range(30) if rng.random() < 0.5] or [0] for _ in range(5)
        ]
        backed = OrpBackedKsi(sets, k=3)
        naive = NaiveKSI(sets)
        for _ in range(15):
            ids = rng.sample(range(5), 3)
            assert backed.report(ids) == naive.report(ids)

    def test_sublinear_on_disjoint_sets(self):
        per = 300
        sets = [[i * per + j for j in range(per)] for i in range(30)]
        ksi = OrpBackedKsi(sets, k=2)
        counter = CostCounter()
        assert ksi.report([0, 1], counter) == []
        assert counter.total < math.sqrt(ksi.input_size)

    def test_validation(self):
        with pytest.raises(ValidationError):
            OrpBackedKsi([[1]], k=1)
        with pytest.raises(ValidationError):
            OrpBackedKsi([[], []], k=2)

    def test_non_contiguous_element_ids(self):
        ksi = OrpBackedKsi([[100, 5], [5, 999]], k=2)
        assert ksi.report([0, 1]) == [5]

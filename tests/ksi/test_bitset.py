"""Unit tests for repro.ksi.bitset (the word-parallel line of §2)."""

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.ksi.bitset import (
    BitsetIntervalIndex,
    BitsetKSI,
    WORD_LENGTH,
    words_touched,
)
from repro.ksi.naive import NaiveKSI

from helpers import random_dataset


class TestBitsetKSI:
    def test_hand_example(self):
        index = BitsetKSI([[1, 2, 3], [2, 3, 4], [3, 5]])
        assert index.report([0, 1]) == [2, 3]
        assert index.report([0, 1, 2]) == [3]
        assert index.report([0, 2]) == [3]

    def test_agrees_with_naive(self, rng):
        sets = [
            [e for e in range(100) if rng.random() < 0.3] or [0] for _ in range(8)
        ]
        index = BitsetKSI(sets)
        naive = NaiveKSI(sets)
        for _ in range(30):
            ids = rng.sample(range(8), rng.choice([2, 3, 4]))
            assert index.report(ids) == naive.report(ids)

    def test_emptiness(self):
        index = BitsetKSI([[1, 2], [3, 4], [2, 3]])
        assert index.is_empty([0, 1])
        assert not index.is_empty([0, 2])

    def test_works_for_any_k(self, rng):
        """Unlike the tree indexes, k is per-query, not fixed at build."""
        sets = [[1, 2, 3, 4, 5]] * 6
        index = BitsetKSI(sets)
        for k in range(2, 7):
            assert index.report(list(range(k))) == [1, 2, 3, 4, 5]

    def test_cost_is_word_count(self):
        universe = 1000
        sets = [list(range(universe)) for _ in range(4)]
        index = BitsetKSI(sets)
        counter = CostCounter()
        out = index.report([0, 1], counter)
        expected_words = 2 * ((universe + WORD_LENGTH - 1) // WORD_LENGTH)
        assert counter["structure_probes"] == expected_words
        assert counter["objects_examined"] == len(out) == universe

    def test_duplicates_in_sets_collapse(self):
        index = BitsetKSI([[5, 5, 7], [7, 7]])
        assert index.report([0, 1]) == [7]

    def test_sparse_element_ids(self):
        index = BitsetKSI([[10**9, 3], [3, 10**9, 17]])
        assert index.report([0, 1]) == [3, 10**9]

    def test_validation(self):
        with pytest.raises(ValidationError):
            BitsetKSI([])
        index = BitsetKSI([[1], [2]])
        with pytest.raises(ValidationError):
            index.report([0, 9])
        with pytest.raises(ValidationError):
            index.report([])

    def test_words_touched_helper(self):
        assert words_touched(3, 64) == 3
        assert words_touched(3, 65) == 6

    def test_space_accounting(self):
        index = BitsetKSI([[1, 2], [2, 3]])
        # 2 masks x 1 word + universe of 3 elements.
        assert index.space_units == 2 + 3


class TestBitsetIntervalIndex:
    def test_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 120, dim=1)
        index = BitsetIntervalIndex(ds)
        for _ in range(30):
            a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            words = rng.sample(range(1, 9), rng.choice([2, 3]))
            got = sorted(o.oid for o in index.query(a, b, words))
            want = sorted(
                o.oid
                for o in ds
                if a <= o.point[0] <= b and o.contains_keywords(words)
            )
            assert got == want

    def test_duplicate_coordinates(self, rng):
        from repro.dataset import Dataset

        points = [(float(rng.randint(0, 4)),) for _ in range(60)]
        docs = [rng.sample(range(1, 6), rng.randint(1, 3)) for _ in range(60)]
        ds = Dataset.from_points(points, docs)
        index = BitsetIntervalIndex(ds)
        got = sorted(o.oid for o in index.query(2.0, 2.0, [1, 2]))
        want = sorted(
            o.oid for o in ds if o.point[0] == 2.0 and o.contains_keywords([1, 2])
        )
        assert got == want

    def test_unknown_keyword(self, rng):
        ds = random_dataset(rng, 30, dim=1)
        index = BitsetIntervalIndex(ds)
        assert index.query(0.0, 10.0, [99, 100]) == []

    def test_empty_interval(self, rng):
        ds = random_dataset(rng, 30, dim=1)
        index = BitsetIntervalIndex(ds)
        assert index.query(50.0, 60.0, [1, 2]) == []

    def test_rejects_2d(self, rng):
        ds = random_dataset(rng, 10, dim=2)
        with pytest.raises(ValidationError):
            BitsetIntervalIndex(ds)

    def test_rejects_no_keywords(self, rng):
        ds = random_dataset(rng, 10, dim=1)
        index = BitsetIntervalIndex(ds)
        with pytest.raises(ValidationError):
            index.query(0.0, 1.0, [])

    def test_cost_word_parallel(self, rng):
        """Cost per query ~ k * |D| / wlen + OUT: sublinear word work."""
        ds = random_dataset(rng, 640, dim=1, vocabulary=4)
        index = BitsetIntervalIndex(ds)
        counter = CostCounter()
        out = index.query(-1.0, 11.0, [1, 2], counter=counter)
        expected_words = 2 * ((640 + WORD_LENGTH - 1) // WORD_LENGTH)
        assert counter["structure_probes"] == expected_words
        assert counter["objects_examined"] == len(out)

"""Differential testing: every applicable index answers every query alike.

One randomized harness, many seeds: build all rectangle-capable indexes on
the same dataset, fire the same queries, demand identical answers.  This is
the strongest cross-implementation check in the suite — a divergence in any
of seven independent code paths fails loudly.
"""

import random

import pytest

from repro.core.baselines import (
    KeywordsOnlyIndex,
    NaiveRectangleIndex,
    ScanAllNn,
    StructuredOnlyIndex,
    l2_distance_squared,
)
from repro.core.dynamic import DynamicOrpKw
from repro.core.lc_kw import LcKwIndex
from repro.core.multi_k import MultiKOrpIndex
from repro.core.nn_l2 import L2NnIndex
from repro.core.orp_kw import OrpKwIndex
from repro.core.rr_kw import RrKwIndex
from repro.costmodel import CostCounter
from repro.dataset import Dataset, RectangleObject, make_objects
from repro.geometry.halfspaces import rect_to_halfspaces
from repro.geometry.rectangles import Rect
from repro.irtree import IrTree
from repro.service import QueryEngine, ShardedQueryEngine


def build_dataset(seed: int) -> Dataset:
    rng = random.Random(seed)
    count = rng.randint(40, 140)
    points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(count)]
    docs = [rng.sample(range(1, 9), rng.randint(1, 4)) for _ in range(count)]
    return Dataset(make_objects(points, docs))


def build_integer_dataset(seed: int) -> Dataset:
    """Integer-coordinate variant (L2NN-KW requires the paper's [N]^d grid)."""
    rng = random.Random(seed)
    count = rng.randint(40, 120)
    seen = set()
    points = []
    while len(points) < count:
        p = (float(rng.randint(0, 30)), float(rng.randint(0, 30)))
        if p not in seen:
            seen.add(p)
            points.append(p)
    docs = [rng.sample(range(1, 9), rng.randint(1, 4)) for _ in range(count)]
    return Dataset(make_objects(points, docs))


def build_rectangles(seed: int):
    rng = random.Random(seed)
    count = rng.randint(30, 90)
    rects = []
    for oid in range(count):
        lo = tuple(rng.uniform(0, 10) for _ in range(2))
        hi = tuple(c + rng.uniform(0, 3) for c in lo)
        doc = frozenset(rng.sample(range(1, 9), rng.randint(1, 4)))
        rects.append(RectangleObject(oid=oid, lo=lo, hi=hi, doc=doc))
    return rects


def random_query(rng, num_words: int = 2):
    a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
    c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
    return Rect((a, c), (b, d)), rng.sample(range(1, 9), num_words)


@pytest.mark.parametrize("seed", range(6))
def test_all_rectangle_indexes_agree(seed):
    dataset = build_dataset(seed)
    rng = random.Random(seed + 1000)

    orp = OrpKwIndex(dataset, k=2)
    lc = LcKwIndex(dataset, k=2)
    multi = MultiKOrpIndex(dataset, max_k=2)
    irtree = IrTree(dataset)
    structured = StructuredOnlyIndex(dataset)
    keywords_only = KeywordsOnlyIndex(dataset)
    dynamic = DynamicOrpKw(k=2, dim=2)
    oid_map = dynamic.insert_many(
        [o.point for o in dataset.objects], [o.doc for o in dataset.objects]
    )
    back = {new: old for new, old in zip(oid_map, range(len(dataset)))}

    for _ in range(12):
        rect, words = random_query(rng)
        brute = sorted(
            o.oid
            for o in dataset
            if rect.contains_point(o.point) and o.contains_keywords(words)
        )
        answers = {
            "orp": sorted(o.oid for o in orp.query(rect, words)),
            "lc": sorted(
                o.oid
                for o in lc.query(list(rect_to_halfspaces(rect.lo, rect.hi)), words)
            ),
            "multi_k": sorted(o.oid for o in multi.query(rect, words)),
            "irtree": sorted(o.oid for o in irtree.query(rect, words)),
            "structured": sorted(
                o.oid for o in structured.query_rect(rect, words)
            ),
            "keywords": sorted(
                o.oid for o in keywords_only.query_rect(rect, words)
            ),
            "dynamic": sorted(back[o.oid] for o in dynamic.query(rect, words)),
        }
        for name, got in answers.items():
            assert got == brute, (seed, name, rect, words, got, brute)


@pytest.mark.parametrize("shards", [1, 2, 4, 7])
def test_sharded_engine_agrees_with_unsharded(shards):
    """The sharded fan-out is answer-equivalent to the monolithic engine.

    Across randomized rect/keyword workloads and budgets — including budgets
    small enough that every shard slice degrades — the sharded engine must
    return exactly the same result sets, its merged trace must account for
    every per-shard unit, and the caller's counter must see the same merged
    total.  For S = 1 sharding is the identity, so even the cost totals
    match the unsharded engine unit-for-unit.
    """
    for seed in range(3):
        dataset = build_dataset(seed)
        rng = random.Random(seed + 7000)
        base = QueryEngine(dataset, max_k=3, cache_size=0)
        sharded = ShardedQueryEngine(dataset, shards=shards, max_k=3, cache_size=0)
        saw_degraded_slice = False
        for _ in range(8):
            a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), rng.randint(1, 3))
            # `shards` units: each shard gets a 1-unit share, forcing
            # per-shard degradation on every non-trivial slice.
            for budget in (None, 4096, shards):
                base_counter = CostCounter()
                merged_counter = CostCounter()
                want = sorted(
                    o.oid for o in base.query(rect, words, budget=budget,
                                              counter=base_counter)
                )
                got = sorted(
                    o.oid for o in sharded.query(rect, words, budget=budget,
                                                 counter=merged_counter)
                )
                assert got == want, (seed, shards, budget, rect, words)
                record = sharded.last_record
                # Merged cost trace: slice costs sum to the merged total,
                # and the caller's counter saw exactly that total.
                assert record.cost.get("total", 0) == sum(
                    s["cost"] for s in record.shards
                )
                assert merged_counter.total == record.cost.get("total", 0)
                saw_degraded_slice = saw_degraded_slice or any(
                    s["degraded"] for s in record.shards
                )
                if shards == 1 and budget is None:
                    # Identity sharding: same planner, same dataset order,
                    # same cost total as the unsharded engine.
                    assert merged_counter.total == base_counter.total
        assert saw_degraded_slice, (seed, shards)


@pytest.mark.parametrize("seed", range(4))
def test_ksi_indexes_agree(seed):
    rng = random.Random(seed)
    sets = [
        [e for e in range(60) if rng.random() < rng.uniform(0.05, 0.5)] or [0]
        for _ in range(7)
    ]
    from repro.ksi import BitsetKSI, KSetIndex, NaiveKSI
    from repro.ksi.ksi_index import OrpBackedKsi

    naive = NaiveKSI(sets)
    kset = KSetIndex(sets, k=2)
    bits = BitsetKSI(sets)
    backed = OrpBackedKsi(sets, k=2)
    for _ in range(15):
        ids = rng.sample(range(7), 2)
        expected = naive.report(ids)
        assert kset.report(ids) == expected
        assert bits.report(ids) == expected
        assert backed.report(ids) == expected


@pytest.mark.parametrize("seed", range(4))
def test_nn_indexes_agree_on_distances(seed):
    from repro.core.baselines import ScanAllNn, linf_distance
    from repro.core.nn_linf import LinfNnIndex

    dataset = build_dataset(seed + 50)
    rng = random.Random(seed + 99)
    nn = LinfNnIndex(dataset, k=2)
    scan = ScanAllNn(dataset)
    for _ in range(6):
        q = (rng.uniform(0, 10), rng.uniform(0, 10))
        t = rng.randint(1, 5)
        words = rng.sample(range(1, 9), 2)
        got = nn.query(q, t, words)
        want = scan.nearest(q, t, words, linf_distance)
        got_d = sorted(round(linf_distance(q, o.point), 9) for o in got)
        want_d = sorted(round(linf_distance(q, o.point), 9) for o in want)
        assert got_d == want_d, (seed, q, t, words)


@pytest.mark.parametrize("seed", range(5))
def test_rr_kw_agrees_with_naive_rectangle(seed):
    """RR-KW's corner-point reduction matches both naive rectangle scans."""
    rects = build_rectangles(seed)
    rng = random.Random(seed + 2000)
    index = RrKwIndex(rects, k=2)
    naive = NaiveRectangleIndex(rects)
    for _ in range(12):
        a, b = sorted([rng.uniform(-1, 12), rng.uniform(-1, 12)])
        c, d = sorted([rng.uniform(-1, 12), rng.uniform(-1, 12)])
        lo, hi = (a, c), (b, d)
        words = rng.sample(range(1, 9), 2)
        brute = sorted(
            r.oid
            for r in rects
            if r.intersects(lo, hi) and r.doc.issuperset(words)
        )
        got = sorted(r.oid for r in index.query(lo, hi, words))
        structured = sorted(r.oid for r in naive.query_structured(lo, hi, words))
        keywords = sorted(r.oid for r in naive.query_keywords(lo, hi, words))
        assert got == brute, (seed, lo, hi, words, got, brute)
        assert structured == brute and keywords == brute


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("k", [1, 2, 3])
def test_multi_k_sweep_agrees_with_brute_force(seed, k):
    """MultiKOrpIndex routes every arity 1..max_k to the right sub-index."""
    dataset = build_dataset(seed + 300)
    rng = random.Random(seed + 3000)
    multi = MultiKOrpIndex(dataset, max_k=3)
    for _ in range(10):
        rect, words = random_query(rng, num_words=k)
        brute = sorted(
            o.oid
            for o in dataset
            if rect.contains_point(o.point) and o.contains_keywords(words)
        )
        got = sorted(o.oid for o in multi.query(rect, words))
        assert got == brute, (seed, k, rect, words, got, brute)


@pytest.mark.parametrize("seed", range(4))
def test_nn_l2_agrees_with_scan(seed):
    """L2NN-KW distance multiset matches the brute-force scan's."""
    dataset = build_integer_dataset(seed + 70)
    rng = random.Random(seed + 4000)
    nn = L2NnIndex(dataset, k=2)
    scan = ScanAllNn(dataset)
    for _ in range(6):
        q = (float(rng.randint(0, 30)), float(rng.randint(0, 30)))
        t = rng.randint(1, 5)
        words = rng.sample(range(1, 9), 2)
        got = nn.query(q, t, words)
        want = scan.nearest(q, t, words, l2_distance_squared)
        got_d = sorted(l2_distance_squared(q, o.point) for o in got)
        want_d = sorted(l2_distance_squared(q, o.point) for o in want)
        assert got_d == want_d, (seed, q, t, words)


@pytest.mark.parametrize("seed", range(4))
def test_dynamic_agrees_after_interleaved_insert_delete(seed):
    """DynamicOrpKw stays answer-equivalent through mixed insert/delete churn.

    Three rounds of interleaved mutations (including enough deletions to
    trigger the tombstone-compaction rebuild), with a full differential
    check against a brute-force scan of the surviving objects after each
    round.
    """
    rng = random.Random(seed + 5000)
    dynamic = DynamicOrpKw(k=2, dim=2)
    live = {}  # oid -> (point, doc)

    def mutate(inserts: int, deletes: int) -> None:
        for _ in range(inserts):
            point = (rng.uniform(0, 10), rng.uniform(0, 10))
            doc = rng.sample(range(1, 9), rng.randint(1, 4))
            oid = dynamic.insert(point, doc)
            live[oid] = (point, frozenset(doc))
        for _ in range(min(deletes, max(0, len(live) - 1))):
            victim = rng.choice(sorted(live))
            dynamic.delete(victim)
            del live[victim]

    mutate(inserts=50, deletes=10)
    for round_no in range(3):
        mutate(inserts=rng.randint(5, 20), deletes=rng.randint(5, 15))
        assert len(dynamic) == len(live)
        for _ in range(8):
            rect, words = random_query(rng)
            brute = sorted(
                oid
                for oid, (point, doc) in live.items()
                if rect.contains_point(point) and doc.issuperset(words)
            )
            got = sorted(o.oid for o in dynamic.query(rect, words))
            assert got == brute, (seed, round_no, rect, words, got, brute)

"""Differential testing: every applicable index answers every query alike.

One randomized harness, many seeds: build all rectangle-capable indexes on
the same dataset, fire the same queries, demand identical answers.  This is
the strongest cross-implementation check in the suite — a divergence in any
of seven independent code paths fails loudly.
"""

import random

import pytest

from repro.core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from repro.core.dynamic import DynamicOrpKw
from repro.core.lc_kw import LcKwIndex
from repro.core.multi_k import MultiKOrpIndex
from repro.core.orp_kw import OrpKwIndex
from repro.dataset import Dataset, make_objects
from repro.geometry.halfspaces import rect_to_halfspaces
from repro.geometry.rectangles import Rect
from repro.irtree import IrTree


def build_dataset(seed: int) -> Dataset:
    rng = random.Random(seed)
    count = rng.randint(40, 140)
    points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(count)]
    docs = [rng.sample(range(1, 9), rng.randint(1, 4)) for _ in range(count)]
    return Dataset(make_objects(points, docs))


def random_query(rng):
    a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
    c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
    return Rect((a, c), (b, d)), rng.sample(range(1, 9), 2)


@pytest.mark.parametrize("seed", range(6))
def test_all_rectangle_indexes_agree(seed):
    dataset = build_dataset(seed)
    rng = random.Random(seed + 1000)

    orp = OrpKwIndex(dataset, k=2)
    lc = LcKwIndex(dataset, k=2)
    multi = MultiKOrpIndex(dataset, max_k=2)
    irtree = IrTree(dataset)
    structured = StructuredOnlyIndex(dataset)
    keywords_only = KeywordsOnlyIndex(dataset)
    dynamic = DynamicOrpKw(k=2, dim=2)
    oid_map = dynamic.insert_many(
        [o.point for o in dataset.objects], [o.doc for o in dataset.objects]
    )
    back = {new: old for new, old in zip(oid_map, range(len(dataset)))}

    for _ in range(12):
        rect, words = random_query(rng)
        brute = sorted(
            o.oid
            for o in dataset
            if rect.contains_point(o.point) and o.contains_keywords(words)
        )
        answers = {
            "orp": sorted(o.oid for o in orp.query(rect, words)),
            "lc": sorted(
                o.oid
                for o in lc.query(list(rect_to_halfspaces(rect.lo, rect.hi)), words)
            ),
            "multi_k": sorted(o.oid for o in multi.query(rect, words)),
            "irtree": sorted(o.oid for o in irtree.query(rect, words)),
            "structured": sorted(
                o.oid for o in structured.query_rect(rect, words)
            ),
            "keywords": sorted(
                o.oid for o in keywords_only.query_rect(rect, words)
            ),
            "dynamic": sorted(back[o.oid] for o in dynamic.query(rect, words)),
        }
        for name, got in answers.items():
            assert got == brute, (seed, name, rect, words, got, brute)


@pytest.mark.parametrize("seed", range(4))
def test_ksi_indexes_agree(seed):
    rng = random.Random(seed)
    sets = [
        [e for e in range(60) if rng.random() < rng.uniform(0.05, 0.5)] or [0]
        for _ in range(7)
    ]
    from repro.ksi import BitsetKSI, KSetIndex, NaiveKSI
    from repro.ksi.ksi_index import OrpBackedKsi

    naive = NaiveKSI(sets)
    kset = KSetIndex(sets, k=2)
    bits = BitsetKSI(sets)
    backed = OrpBackedKsi(sets, k=2)
    for _ in range(15):
        ids = rng.sample(range(7), 2)
        expected = naive.report(ids)
        assert kset.report(ids) == expected
        assert bits.report(ids) == expected
        assert backed.report(ids) == expected


@pytest.mark.parametrize("seed", range(4))
def test_nn_indexes_agree_on_distances(seed):
    from repro.core.baselines import ScanAllNn, linf_distance
    from repro.core.nn_linf import LinfNnIndex

    dataset = build_dataset(seed + 50)
    rng = random.Random(seed + 99)
    nn = LinfNnIndex(dataset, k=2)
    scan = ScanAllNn(dataset)
    for _ in range(6):
        q = (rng.uniform(0, 10), rng.uniform(0, 10))
        t = rng.randint(1, 5)
        words = rng.sample(range(1, 9), 2)
        got = nn.query(q, t, words)
        want = scan.nearest(q, t, words, linf_distance)
        got_d = sorted(round(linf_distance(q, o.point), 9) for o in got)
        want_d = sorted(round(linf_distance(q, o.point), 9) for o in want)
        assert got_d == want_d, (seed, q, t, words)

"""Integration tests: the hotel scenario of §1 through every index."""


import pytest

from repro import (
    CostCounter,
    Dataset,
    L2NnIndex,
    LcKwIndex,
    LinfNnIndex,
    OrpKwIndex,
    Rect,
    SrpKwIndex,
)
from repro.core.baselines import (
    KeywordsOnlyIndex,
    StructuredOnlyIndex,
    linf_distance,
)
from repro.workloads.generators import grid_snap
from repro.workloads.scenarios import (
    condition_c1,
    condition_c2,
    hotel_dataset,
    keywords_for,
)


@pytest.fixture(scope="module")
def hotels():
    return hotel_dataset(500, seed=11)


@pytest.fixture(scope="module")
def query_tags():
    return keywords_for(["pool", "free-parking"])


class TestConditionC1:
    """price ∈ [100, 200] and rating >= 8, plus keywords (an ORP-KW query)."""

    def test_all_solutions_agree(self, hotels, query_tags):
        rect = condition_c1()
        expected = sorted(
            o.oid
            for o in hotels
            if rect.contains_point(o.point) and o.contains_keywords(query_tags)
        )
        index = OrpKwIndex(hotels, k=2)
        structured = StructuredOnlyIndex(hotels)
        keywords = KeywordsOnlyIndex(hotels)
        assert sorted(o.oid for o in index.query(rect, query_tags)) == expected
        assert sorted(o.oid for o in structured.query_rect(rect, query_tags)) == expected
        assert sorted(o.oid for o in keywords.query_rect(rect, query_tags)) == expected

    def test_index_cost_beats_naive_when_selective(self, hotels):
        """Rare tag pair + narrow range: the index should beat both naives."""
        tags = keywords_for(["beachfront", "ski-in"])  # nearly disjoint
        rect = condition_c1(1000.0, 1100.0, 9.5)  # nearly empty range
        index = OrpKwIndex(hotels, k=2)
        c_index, c_struct, c_kw = CostCounter(), CostCounter(), CostCounter()
        index.query(rect, tags, counter=c_index)
        StructuredOnlyIndex(hotels).query_rect(rect, tags, c_struct)
        KeywordsOnlyIndex(hotels).query_rect(rect, tags, c_kw)
        assert c_index.total <= max(c_struct.total, c_kw.total)


class TestConditionC2:
    """c1*price + c2*(10-rating) <= c3, plus keywords (an LC-KW query)."""

    def test_lc_kw_agrees_with_brute_force(self, hotels, query_tags):
        constraint = condition_c2(1.0, 40.0, 300.0)
        expected = sorted(
            o.oid
            for o in hotels
            if constraint.contains(o.point) and o.contains_keywords(query_tags)
        )
        index = LcKwIndex(hotels, k=2)
        got = sorted(o.oid for o in index.query([constraint], query_tags))
        assert got == expected

    def test_combined_constraints(self, hotels, query_tags):
        cons = [condition_c2(1.0, 40.0, 300.0), condition_c2(2.0, 10.0, 500.0)]
        expected = sorted(
            o.oid
            for o in hotels
            if all(h.contains(o.point) for h in cons)
            and o.contains_keywords(query_tags)
        )
        index = LcKwIndex(hotels, k=2)
        got = sorted(o.oid for o in index.query(cons, query_tags))
        assert got == expected


class TestNearestHotel:
    def test_linf_nearest_agrees(self, hotels, query_tags):
        index = LinfNnIndex(hotels, k=2)
        q = (150.0, 9.0)
        got = index.query(q, 3, query_tags)
        matches = sorted(
            (o for o in hotels if o.contains_keywords(query_tags)),
            key=lambda o: (linf_distance(q, o.point), o.oid),
        )
        got_d = sorted(round(linf_distance(q, o.point), 6) for o in got)
        want_d = sorted(round(linf_distance(q, o.point), 6) for o in matches[:3])
        assert got_d == want_d

    def test_l2_nearest_on_snapped_grid(self, hotels, query_tags):
        # L2NN needs integer coordinates (the paper's N^d domain).
        snapped = grid_snap([o.point for o in hotels.objects], 256)
        ds = Dataset.from_points(snapped, [o.doc for o in hotels.objects])
        index = L2NnIndex(ds, k=2)
        q = (40.0, 200.0)
        got = index.query(q, 2, query_tags)
        assert len(got) == min(2, len(ds.matching(query_tags)))

    def test_srp_within_distance(self, hotels, query_tags):
        index = SrpKwIndex(hotels, k=2)
        center, radius = (150.0, 8.0), 50.0
        got = sorted(o.oid for o in index.query(center, radius, query_tags))
        want = sorted(
            o.oid
            for o in hotels
            if sum((a - b) ** 2 for a, b in zip(o.point, center)) <= radius**2
            and o.contains_keywords(query_tags)
        )
        assert got == want


class TestCrossIndexConsistency:
    def test_orp_and_lc_agree_on_rectangles(self, hotels, query_tags):
        from repro.geometry.halfspaces import rect_to_halfspaces

        rect = condition_c1(80.0, 300.0, 6.0)
        orp = OrpKwIndex(hotels, k=2)
        lc = LcKwIndex(hotels, k=2)
        a = sorted(o.oid for o in orp.query(rect, query_tags))
        b = sorted(
            o.oid
            for o in lc.query(list(rect_to_halfspaces(rect.lo, rect.hi)), query_tags)
        )
        assert a == b

    def test_full_space_equals_inverted_index(self, hotels, query_tags):
        from repro.ksi.inverted import InvertedIndex

        orp = OrpKwIndex(hotels, k=2)
        inv = InvertedIndex(hotels)
        a = sorted(o.oid for o in orp.query(Rect.full(2), query_tags))
        b = sorted(o.oid for o in inv.matching_objects(query_tags))
        assert a == b


class TestScalingSmoke:
    def test_query_cost_grows_sublinearly(self):
        """Doubling N should multiply empty-output cost by ~sqrt(2), not 2."""
        costs = {}
        for n in (1000, 4000):
            points = [((i * 37 % n) / n * 10, (i * 61 % n) / n * 10) for i in range(n)]
            docs = [[1] if i % 2 == 0 else [2] for i in range(n)]
            ds = Dataset.from_points(points, docs)
            index = OrpKwIndex(ds, k=2)
            counter = CostCounter()
            index.query(Rect.full(2), [1, 2], counter=counter)
            costs[n] = counter.total
        # cost(4000)/cost(1000) should be near 2 (sqrt scaling), far from 4.
        ratio = costs[4000] / max(costs[1000], 1)
        assert ratio < 3.0

"""Unit tests for repro.rangetree."""

import math

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.rangetree import RangeTree2D


class TestCorrectness:
    def test_agrees_with_brute_force(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(200)]
        tree = RangeTree2D(points)
        for _ in range(40):
            a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            rect = Rect((a, c), (b, d))
            got = sorted(tree.range_query(rect))
            want = sorted(
                i for i, p in enumerate(points) if rect.contains_point(p)
            )
            assert got == want

    def test_duplicate_coordinates(self, rng):
        points = [
            (float(rng.randint(0, 3)), float(rng.randint(0, 3))) for _ in range(80)
        ]
        tree = RangeTree2D(points)
        for _ in range(30):
            a, b = sorted([rng.uniform(-1, 4), rng.uniform(-1, 4)])
            c, d = sorted([rng.uniform(-1, 4), rng.uniform(-1, 4)])
            rect = Rect((a, c), (b, d))
            got = sorted(tree.range_query(rect))
            want = sorted(
                i for i, p in enumerate(points) if rect.contains_point(p)
            )
            assert got == want

    def test_no_duplicates_reported(self, rng):
        points = [(rng.uniform(0, 1), rng.uniform(0, 1)) for _ in range(100)]
        tree = RangeTree2D(points)
        found = tree.range_query(Rect((0.0, 0.0), (1.0, 1.0)))
        assert len(found) == len(set(found)) == 100

    def test_single_point(self):
        tree = RangeTree2D([(1.0, 2.0)])
        assert tree.range_query(Rect((0.0, 0.0), (2.0, 3.0))) == [0]
        assert tree.range_query(Rect((5.0, 5.0), (6.0, 6.0))) == []

    def test_boundary_inclusive(self):
        tree = RangeTree2D([(1.0, 1.0), (2.0, 2.0)])
        assert sorted(tree.range_query(Rect((1.0, 1.0), (2.0, 2.0)))) == [0, 1]


class TestComplexity:
    def test_space_n_log_n(self, rng):
        n = 512
        points = [(rng.random(), rng.random()) for _ in range(n)]
        tree = RangeTree2D(points)
        assert tree.space_units <= 2 * n * (math.log2(n) + 2)

    def test_query_cost_polylog_plus_out(self, rng):
        n = 2048
        points = [(rng.random(), rng.random()) for _ in range(n)]
        tree = RangeTree2D(points)
        counter = CostCounter()
        out = tree.range_query(Rect((0.4, 0.4), (0.6, 0.6)), counter)
        non_output = counter.total - len(out)
        assert non_output <= 12 * math.log2(n) ** 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            RangeTree2D([])
        with pytest.raises(ValidationError):
            RangeTree2D([(1.0,)])
        tree = RangeTree2D([(0.0, 0.0)])
        with pytest.raises(ValidationError):
            tree.range_query(Rect((0.0,), (1.0,)))

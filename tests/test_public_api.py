"""Public API surface checks."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_every_index_class_exposed(self):
        for name in (
            "OrpKwIndex",
            "DimReductionOrpKw",
            "LcKwIndex",
            "SpKwIndex",
            "RrKwIndex",
            "LinfNnIndex",
            "SrpKwIndex",
            "L2NnIndex",
            "KSetIndex",
            "BitsetKSI",
            "DynamicOrpKw",
            "IrTree",
            "MultiKOrpIndex",
            "HybridPlanner",
        ):
            assert name in repro.__all__, name

    def test_docstrings_everywhere(self):
        """Every public module and exported class carries a docstring."""
        import importlib
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, missing

    def test_exported_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type):
                assert (obj.__doc__ or "").strip(), name

    def test_quickstart_docstring_example(self):
        """The package docstring's doctest must stay true."""
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

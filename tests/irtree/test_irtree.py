"""Unit tests for repro.irtree (R-tree + IR-tree)."""

import math

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.rectangles import Rect
from repro.irtree import IrTree, RTree
from repro.workloads.generators import WorkloadConfig, zipf_dataset

from helpers import random_dataset


def random_rects(rng, n):
    rects = []
    for _ in range(n):
        lo = (rng.uniform(0, 10), rng.uniform(0, 10))
        hi = (lo[0] + rng.uniform(0, 2), lo[1] + rng.uniform(0, 2))
        rects.append(Rect(lo, hi))
    return rects


class TestRTree:
    def test_range_query_agrees_with_brute_force(self, rng):
        rects = random_rects(rng, 150)
        tree = RTree(rects)
        for _ in range(25):
            lo = (rng.uniform(0, 10), rng.uniform(0, 10))
            hi = (lo[0] + rng.uniform(0, 4), lo[1] + rng.uniform(0, 4))
            query = Rect(lo, hi)
            got = sorted(tree.range_query(query))
            want = sorted(i for i, r in enumerate(rects) if query.intersects(r))
            assert got == want

    def test_point_entries(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(120)]
        tree = RTree.from_points(points)
        query = Rect((2.0, 2.0), (7.0, 7.0))
        got = sorted(tree.range_query(query))
        want = sorted(i for i, p in enumerate(points) if query.contains_point(p))
        assert got == want

    def test_mbrs_cover_children(self, rng):
        rects = random_rects(rng, 100)
        tree = RTree(rects)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry_id in node.entry_ids:
                    assert node.mbr.covers(rects[entry_id])
            else:
                for child in node.children:
                    assert node.mbr.covers(child.mbr)
                    stack.append(child)

    def test_every_entry_in_exactly_one_leaf(self, rng):
        rects = random_rects(rng, 90)
        tree = RTree(rects)
        seen = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            seen.extend(node.entry_ids)
            stack.extend(node.children)
        assert sorted(seen) == list(range(90))

    def test_height_logarithmic(self, rng):
        rects = random_rects(rng, 1000)
        tree = RTree(rects, fanout=16)
        assert tree.height() <= math.ceil(math.log(1000, 16)) + 2

    def test_fanout_respected(self, rng):
        rects = random_rects(rng, 200)
        tree = RTree(rects, fanout=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.children) <= 8
            assert len(node.entry_ids) <= 8
            stack.extend(node.children)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RTree([])
        with pytest.raises(ValidationError):
            RTree([Rect((0.0,), (1.0,))], fanout=1)
        with pytest.raises(ValidationError):
            RTree([Rect((0.0,), (1.0,)), Rect((0.0, 0.0), (1.0, 1.0))])

    def test_1d_entries(self, rng):
        rects = [Rect((rng.uniform(0, 10),), (rng.uniform(10, 20),)) for _ in range(60)]
        tree = RTree(rects)
        query = Rect((5.0,), (6.0,))
        got = sorted(tree.range_query(query))
        want = sorted(i for i, r in enumerate(rects) if query.intersects(r))
        assert got == want


class TestIrTree:
    def test_agrees_with_brute_force(self, rng):
        ds = random_dataset(rng, 150)
        index = IrTree(ds)
        for _ in range(25):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            got = sorted(o.oid for o in index.query(rect, words))
            want = sorted(
                o.oid
                for o in ds
                if rect.contains_point(o.point) and o.contains_keywords(words)
            )
            assert got == want

    def test_keyword_pruning_fires_on_absent_keyword(self, rng):
        ds = random_dataset(rng, 300)
        index = IrTree(ds)
        counter = CostCounter()
        out = index.query(Rect.full(2), [98, 99], counter=counter)
        assert out == []
        assert counter["nodes_visited"] == 1  # pruned at the root

    def test_no_pruning_on_adversarial_data(self):
        """The §2 story: ubiquitous keywords defeat summary pruning."""
        from repro.dataset import Dataset

        n = 512
        points = [((i * 37 % n) / n * 10, (i * 61 % n) / n * 10) for i in range(n)]
        docs = [[1] if i % 2 == 0 else [2] for i in range(n)]
        ds = Dataset.from_points(points, docs)
        index = IrTree(ds)
        counter = CostCounter()
        out = index.query(Rect.full(2), [1, 2], counter=counter)
        assert out == []
        # Every leaf visited: cost Θ(N) despite empty output.
        assert counter["objects_examined"] == n

    def test_fast_on_clustered_correlated_data(self):
        """...but on correlated data the pruning is very effective."""
        config = WorkloadConfig(num_objects=600, vocabulary=40, seed=4)
        ds = zipf_dataset(config, clustered=True)
        index = IrTree(ds)
        counter = CostCounter()
        index.query(Rect((0.4, 0.4), (0.6, 0.6)), [30, 31], counter=counter)
        assert counter["objects_examined"] < len(ds) / 2

    def test_agrees_with_orp_index(self, rng):
        from repro.core.orp_kw import OrpKwIndex

        ds = random_dataset(rng, 120)
        ir = IrTree(ds)
        orp = OrpKwIndex(ds, k=2)
        for _ in range(10):
            a, b = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            c, d = sorted([rng.uniform(0, 10), rng.uniform(0, 10)])
            rect = Rect((a, c), (b, d))
            words = rng.sample(range(1, 9), 2)
            assert sorted(o.oid for o in ir.query(rect, words)) == sorted(
                o.oid for o in orp.query(rect, words)
            )

    def test_requires_keywords(self, rng):
        ds = random_dataset(rng, 20)
        index = IrTree(ds)
        with pytest.raises(ValidationError):
            index.query(Rect.full(2), [])

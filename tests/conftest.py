"""Shared fixtures for the test suite."""

from __future__ import annotations

import pathlib
import random
import sys

import pytest

# Make tests/helpers.py importable from test files in subdirectories.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.dataset import Dataset  # noqa: E402
from helpers import random_dataset  # noqa: E402


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_dataset(rng):
    """60 objects, 2-D, vocabulary of 8."""
    return random_dataset(rng, 60)


@pytest.fixture
def tiny_dataset():
    """A fixed 4-object dataset for hand-checked expectations."""
    return Dataset.from_points(
        [(1.0, 1.0), (2.0, 5.0), (6.0, 3.0), (8.0, 8.0)],
        [{1, 2}, {1, 3}, {2, 3}, {1, 2, 3}],
    )

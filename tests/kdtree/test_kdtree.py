"""Unit tests for repro.kdtree."""

import math

import numpy as np
import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect
from repro.geometry.regions import ConvexRegion
from repro.kdtree import KdTree


def random_points(rng, n, d=2):
    return np.array([[rng.random() for _ in range(d)] for _ in range(n)])


class TestConstruction:
    def test_leaf_count_matches_points(self, rng):
        pts = random_points(rng, 33)
        tree = KdTree(pts)
        leaves = [n for n in tree.nodes() if n.is_leaf]
        assert sum(len(leaf.indices) for leaf in leaves) == 33

    def test_balanced_sizes(self, rng):
        pts = random_points(rng, 128)
        tree = KdTree(pts)
        for node in tree.nodes():
            assert node.size <= math.ceil(128 / 2**node.level)

    def test_height_logarithmic(self, rng):
        pts = random_points(rng, 256)
        tree = KdTree(pts)
        assert tree.height() <= math.ceil(math.log2(256)) + 1

    def test_cells_partition_parent(self, rng):
        pts = random_points(rng, 64)
        tree = KdTree(pts)
        for node in tree.nodes():
            if node.is_leaf:
                continue
            left, right = node.children
            # children cells within parent, touching at the split
            assert node.cell.covers(left.cell)
            assert node.cell.covers(right.cell)
            assert left.cell.hi[node.axis] == right.cell.lo[node.axis]

    def test_points_inside_their_leaf_cells(self, rng):
        pts = random_points(rng, 80)
        tree = KdTree(pts)
        for node in tree.nodes():
            if node.is_leaf:
                for idx in node.indices:
                    assert node.cell.contains_point(pts[idx])

    def test_duplicates_supported(self):
        pts = np.array([[1.0, 1.0]] * 16 + [[2.0, 2.0]] * 16)
        tree = KdTree(pts)
        assert sum(len(n.indices) for n in tree.nodes() if n.is_leaf) == 32

    def test_custom_root_cell(self, rng):
        pts = random_points(rng, 10)
        root = Rect((-5.0, -5.0), (5.0, 5.0))
        tree = KdTree(pts, root_cell=root)
        assert tree.root.cell == root

    def test_validation(self):
        with pytest.raises(ValidationError):
            KdTree(np.empty((0, 2)))
        with pytest.raises(ValidationError):
            KdTree(np.zeros((3, 2)), leaf_size=0)
        with pytest.raises(ValidationError):
            KdTree(np.zeros((3, 2)), root_cell=Rect((0.0,), (1.0,)))

    def test_leaf_size_respected(self, rng):
        pts = random_points(rng, 100)
        tree = KdTree(pts, leaf_size=8)
        for node in tree.nodes():
            if node.is_leaf:
                assert len(node.indices) <= 8


class TestRangeQuery:
    def test_agrees_with_brute_force(self, rng):
        pts = random_points(rng, 150)
        tree = KdTree(pts)
        for _ in range(40):
            a, b = sorted([rng.random(), rng.random()])
            c, d = sorted([rng.random(), rng.random()])
            rect = Rect((a, c), (b, d))
            got = sorted(tree.range_query(rect))
            want = sorted(
                i for i in range(150) if rect.contains_point(pts[i])
            )
            assert got == want

    def test_full_space_query(self, rng):
        pts = random_points(rng, 50)
        tree = KdTree(pts)
        assert sorted(tree.range_query(Rect.full(2))) == list(range(50))

    def test_1d_tree(self, rng):
        pts = np.array([[rng.random()] for _ in range(60)])
        tree = KdTree(pts)
        for _ in range(20):
            a, b = sorted([rng.random(), rng.random()])
            got = sorted(tree.range_query(Rect((a,), (b,))))
            want = sorted(i for i in range(60) if a <= pts[i][0] <= b)
            assert got == want

    def test_cost_charged(self, rng):
        pts = random_points(rng, 100)
        tree = KdTree(pts)
        counter = CostCounter()
        tree.range_query(Rect((0.2, 0.2), (0.4, 0.4)), counter)
        assert counter["nodes_visited"] > 0

    def test_line_stab_visits_o_sqrt_n_nodes(self, rng):
        """Standard kd-tree property: a vertical line crosses O(sqrt n) cells."""
        n = 4096
        pts = random_points(rng, n)
        tree = KdTree(pts)
        line = Rect((0.5, -1.0), (0.5, 2.0))
        assert tree.count_crossing_nodes(line) <= 8 * math.sqrt(n)


class TestRegionQuery:
    def test_halfplane_agrees_with_brute_force(self, rng):
        pts = random_points(rng, 120)
        tree = KdTree(pts)
        for _ in range(20):
            h = HalfSpace((rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(-0.5, 1))
            region = ConvexRegion([h])
            got = sorted(tree.region_query(region))
            want = sorted(i for i in range(120) if h.contains(pts[i]))
            assert got == want

    def test_3d_tree_range(self, rng):
        pts = random_points(rng, 90, d=3)
        tree = KdTree(pts)
        rect = Rect((0.2, 0.2, 0.2), (0.7, 0.7, 0.7))
        got = sorted(tree.range_query(rect))
        want = sorted(i for i in range(90) if rect.contains_point(pts[i]))
        assert got == want

"""Unit tests for repro.text."""

import pytest

from repro.errors import ValidationError
from repro.text import (
    DEFAULT_STOPWORDS,
    Vocabulary,
    dataset_from_texts,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_keeps_hyphenated_compounds(self):
        assert tokenize("pet-friendly rooms") == ["pet-friendly", "rooms"]

    def test_strips_punctuation(self):
        assert tokenize("pool, gym; spa!") == ["pool", "gym", "spa"]

    def test_digits_kept(self):
        assert tokenize("open 24h") == ["open", "24h"]

    def test_empty_text(self):
        assert tokenize("...") == []


class TestVocabulary:
    def test_ids_dense_and_stable(self):
        vocab = Vocabulary(["pool", "gym"])
        assert vocab.id_of("pool") == 1
        assert vocab.id_of("gym") == 2
        assert vocab.token_of(2) == "gym"
        assert len(vocab) == 2

    def test_build_orders_by_frequency(self):
        docs = [["a", "b"], ["a", "b"], ["a", "c"]]
        vocab = Vocabulary.build(docs, stopwords=())
        assert vocab.id_of("a") == 1  # most frequent

    def test_build_min_count(self):
        docs = [["rare", "common"], ["common"]]
        vocab = Vocabulary.build(docs, min_count=2, stopwords=())
        assert "common" in vocab
        assert "rare" not in vocab

    def test_build_max_fraction(self):
        docs = [["everywhere", "x"], ["everywhere", "y"], ["everywhere", "z"]]
        vocab = Vocabulary.build(docs, max_fraction=0.9, stopwords=())
        assert "everywhere" not in vocab
        assert "x" in vocab

    def test_build_drops_stopwords(self):
        docs = [["the", "pool"], ["the", "gym"]]
        vocab = Vocabulary.build(docs)  # default stopwords
        assert "the" not in vocab
        assert "pool" in vocab

    def test_encode_decode_round_trip(self):
        vocab = Vocabulary(["pool", "gym", "spa"])
        ids = vocab.encode(["gym", "spa", "unknown"])
        assert vocab.decode(ids) == {"gym", "spa"}

    def test_unknown_token_raises(self):
        vocab = Vocabulary(["pool"])
        with pytest.raises(ValidationError):
            vocab.id_of("sauna")
        with pytest.raises(ValidationError):
            vocab.token_of(99)

    def test_query_keywords(self):
        vocab = Vocabulary(["pool", "gym"])
        assert vocab.query_keywords("gym", "pool") == [2, 1]
        with pytest.raises(ValidationError):
            vocab.query_keywords("gym", "sauna")

    def test_validation(self):
        with pytest.raises(ValidationError):
            Vocabulary([])
        with pytest.raises(ValidationError):
            Vocabulary(["a", "a"])
        with pytest.raises(ValidationError):
            Vocabulary.build([["the"]], stopwords=DEFAULT_STOPWORDS)


class TestDatasetFromTexts:
    def test_end_to_end_with_index(self):
        from repro.core.orp_kw import OrpKwIndex
        from repro.geometry.rectangles import Rect

        points = [(120.0, 8.5), (180.0, 9.1), (90.0, 7.0)]
        texts = [
            "Pool and free parking, pet-friendly",
            "pool with a view",
            "free parking, pool",
        ]
        vocab, data = dataset_from_texts(points, texts)
        index = OrpKwIndex(data, k=2)
        words = vocab.query_keywords("pool", "parking")
        hits = index.query(Rect((80.0, 6.0), (200.0, 10.0)), words)
        assert sorted(o.oid for o in hits) == [0, 2]

    def test_empty_document_gets_oov_keyword(self):
        points = [(0.0,), (1.0,)]
        texts = ["the a of", "pool"]  # first is all stopwords
        vocab, data = dataset_from_texts(points, texts)
        assert len(data[0].doc) == 1
        oov = next(iter(data[0].doc))
        assert oov == len(vocab) + 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            dataset_from_texts([(0.0,)], ["a", "b"])

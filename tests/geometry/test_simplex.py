"""Unit tests for repro.geometry.simplex."""

import pytest

from repro.errors import GeometryError
from repro.geometry.simplex import Simplex, hyperplane_through

import numpy as np


class TestHyperplaneThrough:
    def test_2d_line(self):
        normal, offset = hyperplane_through(np.array([[0.0, 0.0], [1.0, 1.0]]))
        # Line y = x: normal proportional to (1, -1).
        assert abs(normal @ np.array([2.0, 2.0]) - offset) < 1e-9
        assert abs(abs(normal[0]) - abs(normal[1])) < 1e-9

    def test_1d_point(self):
        normal, offset = hyperplane_through(np.array([[3.0]]))
        assert abs(normal[0] * 3.0 - offset) < 1e-12

    def test_3d_plane(self):
        pts = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        normal, offset = hyperplane_through(pts)
        for p in pts:
            assert abs(normal @ p - offset) < 1e-9

    def test_dependent_points_rejected(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
        with pytest.raises(GeometryError):
            hyperplane_through(pts)


class TestSimplex:
    def test_triangle_membership(self):
        tri = Simplex([(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)])
        assert tri.contains((1.0, 1.0))
        assert tri.contains((0.0, 0.0))  # vertex
        assert tri.contains((2.0, 0.0))  # edge
        assert not tri.contains((3.0, 3.0))

    def test_triangle_has_three_facets(self):
        tri = Simplex([(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)])
        assert len(tri.halfspaces) == 3

    def test_segment_1d(self):
        seg = Simplex([(1.0,), (3.0,)])
        assert seg.contains((2.0,))
        assert seg.contains((1.0,))
        assert not seg.contains((3.5,))

    def test_tetrahedron_3d(self):
        tet = Simplex([(0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert tet.contains((0.1, 0.1, 0.1))
        assert not tet.contains((0.5, 0.5, 0.5))

    def test_volume(self):
        tri = Simplex([(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)])
        assert tri.volume() == pytest.approx(2.0)
        tet = Simplex([(0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert tet.volume() == pytest.approx(1.0 / 6.0)

    def test_bounding_box(self):
        tri = Simplex([(0.0, 5.0), (2.0, 0.0), (-1.0, 2.0)])
        lo, hi = tri.bounding_box()
        assert lo == (-1.0, 0.0)
        assert hi == (2.0, 5.0)

    def test_wrong_vertex_count_rejected(self):
        with pytest.raises(GeometryError):
            Simplex([(0.0, 0.0), (1.0, 0.0)])  # 2 vertices in 2-D

    def test_collinear_2d_simplex_degenerates_to_segment(self):
        # The paper explicitly allows "degenerated simplices" (Appendix D
        # remark); a collinear triangle behaves as the segment it spans.
        seg = Simplex([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)])
        assert seg.volume() == pytest.approx(0.0)
        assert seg.contains((1.5, 1.5))
        assert not seg.contains((1.0, 2.0))

    def test_dependent_facet_points_rejected(self):
        # In 3-D, three collinear facet points define no unique hyperplane.
        with pytest.raises(GeometryError):
            Simplex([(0.0, 0.0, 0.0), (1.0, 1.0, 1.0), (2.0, 2.0, 2.0), (0.0, 1.0, 0.0)])

    def test_mixed_dims_rejected(self):
        with pytest.raises(GeometryError):
            Simplex([(0.0, 0.0), (1.0,), (0.0, 1.0)])

    def test_membership_matches_halfspace_conjunction(self, rng):
        tri = Simplex([(0.0, 0.0), (4.0, 1.0), (1.0, 4.0)])
        for _ in range(100):
            p = (rng.uniform(-1, 5), rng.uniform(-1, 5))
            assert tri.contains(p) == all(h.contains(p) for h in tri.halfspaces)

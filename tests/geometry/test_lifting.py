"""Unit tests for repro.geometry.lifting (Corollary 6's reduction)."""

import math

import pytest

from repro.geometry.lifting import lift_point, lift_sphere, lift_sphere_squared


class TestLiftPoint:
    def test_appends_squared_norm(self):
        assert lift_point((3.0, 4.0)) == (3.0, 4.0, 25.0)

    def test_1d(self):
        assert lift_point((2.0,)) == (2.0, 4.0)

    def test_origin(self):
        assert lift_point((0.0, 0.0, 0.0)) == (0.0, 0.0, 0.0, 0.0)


class TestLiftSphere:
    def test_membership_equivalence_random(self, rng):
        """The defining property: p in B(c, r) iff lift(p) in halfspace."""
        for _ in range(300):
            dim = rng.choice([1, 2, 3])
            center = tuple(rng.uniform(-5, 5) for _ in range(dim))
            radius = rng.uniform(0.1, 5.0)
            h = lift_sphere(center, radius)
            p = tuple(rng.uniform(-6, 6) for _ in range(dim))
            dist = math.sqrt(sum((a - b) ** 2 for a, b in zip(p, center)))
            if abs(dist - radius) < 1e-6:
                continue  # skip knife-edge cases
            assert h.contains(lift_point(p)) == (dist <= radius)

    def test_boundary_point_on_halfspace_boundary(self):
        h = lift_sphere((0.0, 0.0), 2.0)
        assert h.on_boundary(lift_point((2.0, 0.0)))
        assert h.on_boundary(lift_point((0.0, -2.0)))

    def test_squared_variant_matches(self):
        a = lift_sphere((1.0, -2.0), 3.0)
        b = lift_sphere_squared((1.0, -2.0), 9.0)
        assert a.coeffs == b.coeffs
        assert a.bound == pytest.approx(b.bound)

    def test_halfspace_dimensionality(self):
        h = lift_sphere((0.0, 0.0), 1.0)
        assert h.dim == 3  # d+1

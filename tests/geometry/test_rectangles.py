"""Unit tests for repro.geometry.rectangles."""


import pytest

from repro.errors import ValidationError
from repro.geometry.rectangles import Rect


class TestConstruction:
    def test_basic(self):
        rect = Rect((0.0, 1.0), (2.0, 3.0))
        assert rect.dim == 2
        assert rect.interval(1) == (1.0, 3.0)

    def test_full_space(self):
        rect = Rect.full(3)
        assert rect.dim == 3
        assert not rect.is_bounded()
        assert rect.contains_point((1e18, -1e18, 0.0))

    def test_from_intervals(self):
        rect = Rect.from_intervals([(0.0, 1.0), (2.0, 3.0)])
        assert rect == Rect((0.0, 2.0), (1.0, 3.0))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            Rect((1.0,), (0.0,))

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValidationError):
            Rect((0.0, 0.0), (1.0,))

    def test_zero_dims_rejected(self):
        with pytest.raises(ValidationError):
            Rect((), ())

    def test_degenerate_allowed(self):
        rect = Rect((1.0,), (1.0,))
        assert rect.contains_point((1.0,))


class TestPredicates:
    def test_contains_is_closed(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        assert rect.contains_point((0.0, 1.0))
        assert rect.contains_point((0.5, 0.5))
        assert not rect.contains_point((1.0001, 0.5))

    def test_interior_is_open(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        assert rect.interior_contains((0.5, 0.5))
        assert not rect.interior_contains((0.0, 0.5))

    def test_boundary(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        assert rect.boundary_contains((0.0, 0.5))
        assert rect.boundary_contains((1.0, 1.0))
        assert not rect.boundary_contains((0.5, 0.5))
        assert not rect.boundary_contains((2.0, 0.5))

    def test_unbounded_sides_have_no_boundary(self):
        rect = Rect.full(2)
        assert not rect.boundary_contains((0.0, 0.0))

    def test_intersects_symmetric(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((1.0, 1.0), (3.0, 3.0))
        c = Rect((5.0, 5.0), (6.0, 6.0))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c) and not c.intersects(a)

    def test_touching_rectangles_intersect(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 0.0), (2.0, 1.0))
        assert a.intersects(b)

    def test_covers(self):
        outer = Rect((0.0, 0.0), (4.0, 4.0))
        inner = Rect((1.0, 1.0), (2.0, 2.0))
        assert outer.covers(inner)
        assert not inner.covers(outer)
        assert outer.covers(outer)


class TestConstructions:
    def test_clip(self):
        a = Rect((0.0, 0.0), (2.0, 2.0))
        b = Rect((1.0, -1.0), (3.0, 1.0))
        assert a.clip(b) == Rect((1.0, 0.0), (2.0, 1.0))

    def test_clip_empty_raises(self):
        a = Rect((0.0,), (1.0,))
        b = Rect((2.0,), (3.0,))
        with pytest.raises(ValidationError):
            a.clip(b)

    def test_split_shares_boundary(self):
        rect = Rect((0.0, 0.0), (4.0, 4.0))
        left, right = rect.split(0, 1.5)
        assert left == Rect((0.0, 0.0), (1.5, 4.0))
        assert right == Rect((1.5, 0.0), (4.0, 4.0))
        # The halves share the splitting hyperplane (closed cells).
        assert left.contains_point((1.5, 2.0))
        assert right.contains_point((1.5, 2.0))

    def test_split_outside_extent_rejected(self):
        rect = Rect((0.0,), (1.0,))
        with pytest.raises(ValidationError):
            rect.split(0, 2.0)

    def test_vertices_of_square(self):
        rect = Rect((0.0, 0.0), (1.0, 1.0))
        assert set(rect.vertices()) == {
            (0.0, 0.0),
            (0.0, 1.0),
            (1.0, 0.0),
            (1.0, 1.0),
        }

    def test_vertices_of_degenerate(self):
        rect = Rect((0.0, 1.0), (1.0, 1.0))
        assert set(rect.vertices()) == {(0.0, 1.0), (1.0, 1.0)}

    def test_vertices_of_unbounded_raises(self):
        with pytest.raises(ValidationError):
            Rect.full(2).vertices()

    def test_hash_and_eq(self):
        a = Rect((0.0,), (1.0,))
        b = Rect((0.0,), (1.0,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect((0.0,), (2.0,))

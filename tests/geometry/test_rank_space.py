"""Unit tests for repro.geometry.rank_space (§3.4)."""

import pytest

from repro.costmodel import CostCounter
from repro.errors import ValidationError
from repro.geometry.rank_space import RankSpaceMap
from repro.geometry.rectangles import Rect


class TestRankAssignment:
    def test_distinct_coordinates(self):
        m = RankSpaceMap([(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
        assert m.to_rank_point(0) == (2, 0)
        assert m.to_rank_point(1) == (0, 2)
        assert m.to_rank_point(2) == (1, 1)

    def test_ties_broken_by_id(self):
        m = RankSpaceMap([(5.0,), (5.0,), (5.0,)])
        assert [m.to_rank_point(i) for i in range(3)] == [(0,), (1,), (2,)]

    def test_ranks_are_a_permutation_per_axis(self, rng):
        points = [(rng.choice([1.0, 2.0, 3.0]), rng.uniform(0, 1)) for _ in range(50)]
        m = RankSpaceMap(points)
        for axis in range(2):
            ranks = sorted(m.to_rank_point(i)[axis] for i in range(50))
            assert ranks == list(range(50))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            RankSpaceMap([])


class TestIntervalConversion:
    def test_interval_covers_matching_ranks(self):
        m = RankSpaceMap([(1.0,), (2.0,), (3.0,), (4.0,)])
        lo, hi = m.rank_interval(0, 1.5, 3.5)
        assert (lo, hi) == (1.0, 2.0)  # ranks of 2.0 and 3.0

    def test_empty_interval(self):
        m = RankSpaceMap([(1.0,), (2.0,)])
        lo, hi = m.rank_interval(0, 5.0, 6.0)
        assert lo > hi

    def test_interval_closed_at_boundaries(self):
        m = RankSpaceMap([(1.0,), (2.0,), (3.0,)])
        lo, hi = m.rank_interval(0, 2.0, 2.0)
        assert (lo, hi) == (1.0, 1.0)

    def test_counter_charged(self):
        m = RankSpaceMap([(1.0,)])
        counter = CostCounter()
        m.rank_interval(0, 0.0, 2.0, counter)
        assert counter["comparisons"] > 0


class TestRectConversion:
    def test_preserves_membership(self, rng):
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(40)]
        m = RankSpaceMap(points)
        for _ in range(50):
            a, b = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            c, d = sorted([rng.uniform(-1, 11), rng.uniform(-1, 11)])
            rect = Rect((a, c), (b, d))
            rank_rect = m.rect_to_rank(rect)
            for i, p in enumerate(points):
                assert rect.contains_point(p) == rank_rect.contains_point(
                    m.to_rank_point(i)
                )

    def test_preserves_membership_with_duplicates(self, rng):
        points = [(float(rng.randint(0, 3)), float(rng.randint(0, 3))) for _ in range(30)]
        m = RankSpaceMap(points)
        for _ in range(40):
            a, b = sorted([rng.uniform(-1, 4), rng.uniform(-1, 4)])
            c, d = sorted([rng.uniform(-1, 4), rng.uniform(-1, 4)])
            rect = Rect((a, c), (b, d))
            rank_rect = m.rect_to_rank(rect)
            for i, p in enumerate(points):
                assert rect.contains_point(p) == rank_rect.contains_point(
                    m.to_rank_point(i)
                )

    def test_empty_axis_empties_whole_query(self):
        m = RankSpaceMap([(1.0, 1.0), (2.0, 2.0)])
        rank_rect = m.rect_to_rank(Rect((10.0, 0.0), (11.0, 5.0)))
        for i in range(2):
            assert not rank_rect.contains_point(m.to_rank_point(i))

"""Unit tests for repro.geometry.regions."""

import pytest

from repro.errors import ValidationError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.rectangles import Rect
from repro.geometry.regions import ConvexRegion, EverythingRegion, RectRegion
from repro.geometry.simplex import Simplex
from repro.partitiontree.cells import ConvexCell


@pytest.fixture
def unit_cell():
    return Rect((0.0, 0.0), (1.0, 1.0))


@pytest.fixture
def polygon_cell():
    return ConvexCell.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))


class TestRectRegion:
    def test_contains_point(self):
        region = RectRegion(Rect((0.0, 0.0), (2.0, 2.0)))
        assert region.contains_point((1.0, 1.0))
        assert not region.contains_point((3.0, 0.0))

    def test_rect_cell_fast_paths(self, unit_cell):
        region = RectRegion(Rect((0.5, 0.5), (2.0, 2.0)))
        assert region.intersects(unit_cell)
        assert not region.covers(unit_cell)
        assert RectRegion(Rect((-1.0, -1.0), (2.0, 2.0))).covers(unit_cell)

    def test_disjoint_rect_cell(self, unit_cell):
        region = RectRegion(Rect((2.0, 2.0), (3.0, 3.0)))
        assert not region.intersects(unit_cell)

    def test_polygon_cell(self, polygon_cell):
        assert RectRegion(Rect((0.5, 0.5), (2.0, 2.0))).intersects(polygon_cell)
        assert not RectRegion(Rect((2.0, 2.0), (3.0, 3.0))).intersects(polygon_cell)
        assert RectRegion(Rect((-1.0, -1.0), (2.0, 2.0))).covers(polygon_cell)
        assert not RectRegion(Rect((0.5, 0.5), (2.0, 2.0))).covers(polygon_cell)

    def test_polygon_cell_corner_overlap_via_lp(self):
        # Rotated-square cell vs rect overlapping only through an edge,
        # with no vertex of either inside the other: needs the LP fallback.
        cell = ConvexCell(
            [(0.0, -1.0), (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)],
            [
                HalfSpace((1.0, 1.0), 1.0),
                HalfSpace((1.0, -1.0), 1.0),
                HalfSpace((-1.0, 1.0), 1.0),
                HalfSpace((-1.0, -1.0), 1.0),
            ],
        )
        thin = RectRegion(Rect((0.4, -2.0), (0.6, 2.0)))
        assert thin.intersects(cell)


class TestConvexRegion:
    def test_from_simplex(self):
        tri = Simplex([(0.0, 0.0), (2.0, 0.0), (0.0, 2.0)])
        region = ConvexRegion.from_simplex(tri)
        assert region.contains_point((0.5, 0.5))
        assert not region.contains_point((2.0, 2.0))

    def test_intersects_rect_cell(self, unit_cell):
        region = ConvexRegion([HalfSpace((1.0, 1.0), 0.5)])  # x+y <= .5
        assert region.intersects(unit_cell)
        far = ConvexRegion([HalfSpace((1.0, 1.0), -5.0)])
        assert not far.intersects(unit_cell)

    def test_covers_rect_cell(self, unit_cell):
        assert ConvexRegion([HalfSpace((1.0, 1.0), 5.0)]).covers(unit_cell)
        assert not ConvexRegion([HalfSpace((1.0, 1.0), 1.5)]).covers(unit_cell)

    def test_lp_fallback_needed_case(self, unit_cell):
        # A thin diagonal band crossing the cell without containing any
        # cell vertex; vertex filters alone cannot decide.
        band = ConvexRegion(
            [HalfSpace((1.0, -1.0), 0.05), HalfSpace((-1.0, 1.0), 0.05)]
        )
        assert band.intersects(unit_cell)

    def test_infeasible_region(self, unit_cell):
        empty = ConvexRegion(
            [HalfSpace((1.0, 0.0), 0.2), HalfSpace((-1.0, 0.0), -0.8)]
        )
        assert not empty.intersects(unit_cell)

    def test_empty_halfspace_list_rejected(self):
        with pytest.raises(ValidationError):
            ConvexRegion([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValidationError):
            ConvexRegion([HalfSpace((1.0,), 0.0), HalfSpace((1.0, 0.0), 0.0)])

    def test_polygon_cell(self, polygon_cell):
        region = ConvexRegion([HalfSpace((1.0, 1.0), 0.5)])
        assert region.intersects(polygon_cell)
        assert not region.covers(polygon_cell)
        assert ConvexRegion([HalfSpace((1.0, 1.0), 10.0)]).covers(polygon_cell)


class TestEverythingRegion:
    def test_everything(self, unit_cell):
        region = EverythingRegion(2)
        assert region.contains_point((99.0, -99.0))
        assert region.intersects(unit_cell)
        assert region.covers(unit_cell)


class TestAgainstBruteForce:
    def test_intersects_agrees_with_sampling(self, rng):
        """Randomized regions/cells: sampled containment implies intersects."""
        for _ in range(60):
            cell = Rect(
                sorted([rng.uniform(0, 1), rng.uniform(0, 1)]),
                sorted([rng.uniform(1, 2), rng.uniform(1, 2)]),
            )
            cell = Rect(
                (min(cell.lo[0], cell.hi[0]), min(cell.lo[1], cell.hi[1])),
                (max(cell.lo[0], cell.hi[0]), max(cell.lo[1], cell.hi[1])),
            )
            region = ConvexRegion(
                [
                    HalfSpace(
                        (rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(-1, 2)
                    )
                    for _ in range(rng.randint(1, 3))
                ]
            )
            hit = False
            for _ in range(50):
                p = (
                    rng.uniform(cell.lo[0], cell.hi[0]),
                    rng.uniform(cell.lo[1], cell.hi[1]),
                )
                if region.contains_point(p):
                    hit = True
                    break
            if hit:
                assert region.intersects(cell)

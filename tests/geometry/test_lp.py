"""Unit tests for repro.geometry.lp (Seidel's algorithm)."""

import itertools

import pytest

from repro.geometry.halfspaces import HalfSpace
from repro.geometry.lp import feasible_point, halfspaces_feasible, solve_lp
from repro.errors import GeometryError


class TestBaseCases:
    def test_unconstrained_box_minimum(self):
        point = solve_lp([], (1.0, 1.0), (0.0, 0.0), (2.0, 2.0))
        assert point == (0.0, 0.0)

    def test_maximization_via_negation(self):
        point = solve_lp([], (-1.0,), (0.0,), (5.0,))
        assert point == (5.0,)

    def test_1d_constraint_tightens(self):
        point = solve_lp([((1.0,), 3.0)], (-1.0,), (0.0,), (5.0,))
        assert point == pytest.approx((3.0,))

    def test_1d_infeasible(self):
        # x <= 1 and x >= 2 within [0, 5]
        point = solve_lp([((1.0,), 1.0), ((-1.0,), -2.0)], (1.0,), (0.0,), (5.0,))
        assert point is None

    def test_empty_box(self):
        assert solve_lp([], (1.0,), (2.0,), (1.0,)) is None


class TestTwoD:
    def test_diagonal_constraint(self):
        # minimize -x - y s.t. x + y <= 1 in [0,1]^2 -> on the line x+y=1
        point = solve_lp([((1.0, 1.0), 1.0)], (-1.0, -1.0), (0.0, 0.0), (1.0, 1.0))
        assert point is not None
        assert point[0] + point[1] == pytest.approx(1.0)

    def test_infeasible_pair(self):
        cons = [((1.0, 0.0), 0.2), ((-1.0, 0.0), -0.8)]  # x <= .2 and x >= .8
        assert feasible_point(cons, (0.0, 0.0), (1.0, 1.0)) is None

    def test_feasible_point_satisfies_constraints(self):
        cons = [((1.0, 2.0), 2.0), ((-1.0, 1.0), 0.5)]
        point = feasible_point(cons, (0.0, 0.0), (3.0, 3.0))
        assert point is not None
        for coeffs, bound in cons:
            assert sum(c * x for c, x in zip(coeffs, point)) <= bound + 1e-6

    def test_optimum_value_vertex(self):
        # minimize x s.t. x >= 0.25 encoded as -x <= -0.25
        point = solve_lp([((-1.0, 0.0), -0.25)], (1.0, 0.0), (0.0, 0.0), (1.0, 1.0))
        assert point[0] == pytest.approx(0.25)


class TestAgainstGridBruteForce:
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_feasibility_agrees_with_grid(self, dim, rng):
        steps = [i / 6.0 for i in range(7)]
        for _ in range(60):
            cons = [
                (
                    tuple(rng.uniform(-1.0, 1.0) for _ in range(dim)),
                    rng.uniform(-0.5, 1.0),
                )
                for _ in range(rng.randint(1, 5))
            ]
            lp_point = feasible_point(cons, (0.0,) * dim, (1.0,) * dim)
            grid_feasible = any(
                all(
                    sum(c * x for c, x in zip(coeffs, g)) <= bound + 1e-9
                    for coeffs, bound in cons
                )
                for g in itertools.product(steps, repeat=dim)
            )
            if grid_feasible:
                # Grid feasibility implies LP feasibility.
                assert lp_point is not None
            if lp_point is not None:
                for coeffs, bound in cons:
                    value = sum(c * x for c, x in zip(coeffs, lp_point))
                    assert value <= bound + 1e-6
                assert all(-1e-9 <= x <= 1 + 1e-9 for x in lp_point)

    def test_optimality_against_grid(self, rng):
        steps = [i / 10.0 for i in range(11)]
        for _ in range(40):
            cons = [
                ((rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(0.2, 1.5))
                for _ in range(3)
            ]
            obj = (rng.uniform(-1, 1), rng.uniform(-1, 1))
            point = solve_lp(cons, obj, (0.0, 0.0), (1.0, 1.0))
            grid_best = None
            for g in itertools.product(steps, repeat=2):
                if all(c[0] * g[0] + c[1] * g[1] <= b + 1e-9 for c, b in cons):
                    val = obj[0] * g[0] + obj[1] * g[1]
                    grid_best = val if grid_best is None else min(grid_best, val)
            if point is not None and grid_best is not None:
                lp_val = obj[0] * point[0] + obj[1] * point[1]
                # LP optimum can only be at most the best grid value (+tol).
                assert lp_val <= grid_best + 1e-6


class TestHalfspacesFeasible:
    def test_wrapper(self):
        spaces = [HalfSpace((1.0, 0.0), 0.5), HalfSpace((0.0, 1.0), 0.5)]
        assert halfspaces_feasible(spaces, (0.0, 0.0), (1.0, 1.0))
        spaces.append(HalfSpace((-1.0, 0.0), -0.9))  # x >= 0.9 contradicts x <= 0.5
        assert not halfspaces_feasible(spaces, (0.0, 0.0), (1.0, 1.0))

    def test_box_mismatch_raises(self):
        with pytest.raises(GeometryError):
            solve_lp([], (1.0, 1.0), (0.0,), (1.0,))

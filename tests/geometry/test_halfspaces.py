"""Unit tests for repro.geometry.halfspaces."""

import pytest

from repro.errors import ValidationError
from repro.geometry.halfspaces import HalfSpace, rect_to_halfspaces


class TestHalfSpace:
    def test_membership(self):
        h = HalfSpace((1.0, 1.0), 1.0)  # x + y <= 1
        assert h.contains((0.0, 0.0))
        assert h.contains((0.5, 0.5))  # boundary
        assert not h.contains((1.0, 1.0))

    def test_strict_membership(self):
        h = HalfSpace((1.0,), 2.0)
        assert h.strictly_contains((1.0,))
        assert not h.strictly_contains((2.0,))

    def test_on_boundary(self):
        h = HalfSpace((2.0, 0.0), 4.0)  # 2x <= 4
        assert h.on_boundary((2.0, 99.0))
        assert not h.on_boundary((1.0, 0.0))

    def test_boundary_tolerance_is_relative(self):
        h = HalfSpace((1.0,), 1e9)
        assert h.on_boundary((1e9 + 0.001,))  # within relative eps of 1e9

    def test_complement_shares_boundary(self):
        h = HalfSpace((1.0, -1.0), 0.5)
        comp = h.complement()
        point_on = (1.0, 0.5)  # 1*1 - 1*0.5 = 0.5
        assert h.on_boundary(point_on)
        assert comp.on_boundary(point_on)
        assert comp.contains((5.0, 0.0)) != h.strictly_contains((5.0, 0.0))

    def test_value(self):
        h = HalfSpace((2.0, 3.0), 0.0)
        assert h.value((1.0, 1.0)) == 5.0

    def test_zero_normal_rejected(self):
        with pytest.raises(ValidationError):
            HalfSpace((0.0, 0.0), 1.0)

    def test_empty_coeffs_rejected(self):
        with pytest.raises(ValidationError):
            HalfSpace((), 1.0)

    def test_axis_constructors(self):
        upper = HalfSpace.axis_upper(3, 1, 5.0)
        lower = HalfSpace.axis_lower(3, 1, 2.0)
        assert upper.contains((99.0, 5.0, -99.0))
        assert not upper.contains((0.0, 5.1, 0.0))
        assert lower.contains((0.0, 2.0, 0.0))
        assert not lower.contains((0.0, 1.9, 0.0))

    def test_hash_and_eq(self):
        assert HalfSpace((1.0,), 2.0) == HalfSpace((1.0,), 2.0)
        assert hash(HalfSpace((1.0,), 2.0)) == hash(HalfSpace((1.0,), 2.0))


class TestRectToHalfspaces:
    def test_bounded_rect_gives_2d_constraints(self):
        spaces = rect_to_halfspaces((0.0, 1.0), (2.0, 3.0))
        assert len(spaces) == 4
        inside, outside = (1.0, 2.0), (3.0, 2.0)
        assert all(h.contains(inside) for h in spaces)
        assert not all(h.contains(outside) for h in spaces)

    def test_infinite_bounds_produce_no_constraint(self):
        import math

        spaces = rect_to_halfspaces((-math.inf, 0.0), (math.inf, 1.0))
        assert len(spaces) == 2  # only the y-axis is constrained

    def test_conjunction_matches_rect_membership(self):
        from repro.geometry.rectangles import Rect

        rect = Rect((0.0, -1.0), (2.0, 4.0))
        spaces = rect_to_halfspaces(rect.lo, rect.hi)
        for point in [(0.0, -1.0), (1.0, 0.0), (2.1, 0.0), (1.0, 4.5)]:
            assert rect.contains_point(point) == all(h.contains(point) for h in spaces)

"""Unit tests for repro.geometry.polytope and triangulate."""

import pytest

from repro.errors import GeometryError
from repro.geometry.halfspaces import HalfSpace
from repro.geometry.polytope import (
    HPolytope,
    optional_feasible_point,
    polytope_from_constraints,
)
from repro.geometry.triangulate import decompose_polytope, triangulate_vertices


class TestHPolytope:
    def test_membership(self):
        poly = HPolytope([HalfSpace((1.0, 0.0), 1.0), HalfSpace((0.0, 1.0), 1.0)])
        assert poly.contains((0.5, 0.5))
        assert not poly.contains((2.0, 0.0))

    def test_unit_square_vertices(self):
        poly = polytope_from_constraints([], (0.0, 0.0), (0.0, 0.0)).clipped_to_box(
            (0.0, 0.0), (1.0, 1.0)
        )
        verts = set(poly.enumerate_vertices())
        assert {(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)}.issubset(verts)

    def test_triangle_vertices(self):
        # x >= 0, y >= 0, x + y <= 1
        poly = HPolytope(
            [
                HalfSpace((-1.0, 0.0), 0.0),
                HalfSpace((0.0, -1.0), 0.0),
                HalfSpace((1.0, 1.0), 1.0),
            ]
        )
        verts = poly.enumerate_vertices()
        assert len(verts) == 3
        for expected in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]:
            assert any(
                abs(v[0] - expected[0]) < 1e-9 and abs(v[1] - expected[1]) < 1e-9
                for v in verts
            )

    def test_feasible(self):
        poly = HPolytope([HalfSpace((1.0, 1.0), 1.0)])
        assert poly.feasible((0.0, 0.0), (1.0, 1.0))
        assert not poly.feasible((2.0, 2.0), (3.0, 3.0))

    def test_empty_polytope_has_no_vertices(self):
        poly = HPolytope(
            [HalfSpace((1.0, 0.0), 0.0), HalfSpace((-1.0, 0.0), -1.0)]
        ).clipped_to_box((-5.0, -5.0), (5.0, 5.0))
        assert poly.enumerate_vertices() == []

    def test_no_halfspaces_rejected(self):
        with pytest.raises(GeometryError):
            HPolytope([])

    def test_mixed_dims_rejected(self):
        with pytest.raises(GeometryError):
            HPolytope([HalfSpace((1.0,), 0.0), HalfSpace((1.0, 0.0), 0.0)])


class TestPolytopeFromConstraints:
    def test_clip_box_encloses_data(self):
        poly = polytope_from_constraints(
            [HalfSpace((1.0, 0.0), 100.0)], (0.0, 0.0), (10.0, 10.0)
        )
        # Every data-range point must stay inside the clipped polytope.
        assert poly.contains((0.0, 0.0))
        assert poly.contains((10.0, 10.0))

    def test_empty_constraint_list_gives_box(self):
        poly = polytope_from_constraints([], (0.0,), (1.0,))
        assert poly.contains((0.5,))
        assert not poly.contains((99.0,))


class TestTriangulate:
    def test_1d_interval(self):
        simplices = triangulate_vertices([(0.0,), (2.0,), (1.0,)], 1)
        assert len(simplices) == 1
        assert simplices[0].contains((1.5,))

    def test_square_decomposes_into_triangles(self):
        verts = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
        simplices = triangulate_vertices(verts, 2)
        assert len(simplices) == 2
        total_area = sum(s.volume() for s in simplices)
        assert total_area == pytest.approx(1.0)

    def test_degenerate_returns_empty(self):
        assert triangulate_vertices([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)], 2) == []
        assert triangulate_vertices([(0.0, 0.0)], 2) == []

    def test_decomposition_covers_polytope(self, rng):
        constraints = [
            HalfSpace((rng.uniform(-1, 1), rng.uniform(-1, 1)), rng.uniform(0.2, 2))
            for _ in range(3)
        ]
        poly = polytope_from_constraints(constraints, (0.0, 0.0), (1.0, 1.0))
        simplices = decompose_polytope(poly)
        for _ in range(200):
            p = (rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5))
            in_poly = poly.contains(p)
            in_simplices = any(s.contains(p) for s in simplices)
            if in_poly:
                assert in_simplices, p

    def test_3d_cube_decomposition(self):
        poly = polytope_from_constraints([], (0.0, 0.0, 0.0), (0.0, 0.0, 0.0)).clipped_to_box(
            (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)
        )
        simplices = decompose_polytope(poly)
        assert simplices
        assert sum(s.volume() for s in simplices) == pytest.approx(1.0)


class TestOptionalFeasiblePoint:
    def test_returns_point_or_none(self):
        point = optional_feasible_point(
            [HalfSpace((1.0,), 0.5)], (0.0,), (1.0,)
        )
        assert point is not None and point[0] <= 0.5 + 1e-9
        assert (
            optional_feasible_point([HalfSpace((1.0,), -1.0)], (0.0,), (1.0,)) is None
        )

"""k-set intersection: the hardness frame of §1.2, executable.

Pure keyword search *is* k-set intersection in disguise.  This example
builds an adversarial family of sets — pairwise almost-disjoint blocks with
a small planted common core — where the naive hash index must scan a whole
set per query, and shows the two sub-linear indexes of this library:

* the direct Cohen-Porat-style large/small recursion (KSetIndex, §3.5), and
* the §1.2 reduction that answers k-SI with a 1-D ORP-KW index.

Run with:  python examples/set_intersection.py
"""

from repro import CostCounter
from repro.bench.reporting import print_table
from repro.ksi import KSetIndex, NaiveKSI
from repro.ksi.ksi_index import OrpBackedKsi
from repro.workloads.generators import adversarial_ksi_sets


def main() -> None:
    # 30 sets of 2,000 elements each; every pair intersects in exactly the
    # 32 planted elements.
    sets = adversarial_ksi_sets(num_sets=30, set_size=2000, planted=32, seed=1)
    naive = NaiveKSI(sets)
    direct = KSetIndex(sets, k=2)
    backed = OrpBackedKsi(sets, k=2)
    n = naive.input_size
    print(f"k-SI instance: m = {len(sets)} sets, N = {n}, planted OUT = 32")
    print(f"theory bound  sqrt(N)(1 + sqrt(OUT)) = {n**0.5 * (1 + 32**0.5):.0f}\n")

    rows = []
    answers = {}
    for name, index in (
        ("naive hashing (Θ(N) per query)", naive),
        ("KSetIndex (Cohen-Porat style)", direct),
        ("OrpBackedKsi (§1.2 reduction)", backed),
    ):
        counter = CostCounter()
        result = index.report([3, 17], counter)
        answers[name] = result
        rows.append(
            {"index": name, "|S3 ∩ S17|": len(result), "cost_units": counter.total}
        )
    assert len({tuple(a) for a in answers.values()}) == 1, "indexes disagree!"
    print_table(rows, title="one reporting query, three indexes:")

    # Emptiness: the budgeted trick of the paper's footnote 4.
    empty_sets = adversarial_ksi_sets(num_sets=30, set_size=2000, planted=0, seed=2)
    direct_empty = KSetIndex(empty_sets, k=2)
    counter = CostCounter()
    verdict = direct_empty.is_empty([0, 1], counter)
    print(
        f"emptiness query on the disjoint variant: empty={verdict}, "
        f"cost={counter.total} units (naive would pay {len(empty_sets[0])})"
    )


if __name__ == "__main__":
    main()

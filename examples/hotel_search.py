"""The paper's §1 motivating scenario: Hotel(price, rating, Doc).

Builds a synthetic hotel relation and answers the paper's two example
conditions with keywords attached:

  C1  price ∈ [100, 200] and rating >= 8          (an ORP-KW query)
  C2  c1*price + c2*(10 - rating) <= c3           (an LC-KW query)

plus a nearest-hotel query, and compares the indexes' RAM-model cost with
the two naive solutions the paper starts from.

Run with:  python examples/hotel_search.py
"""

from repro import CostCounter, LcKwIndex, LinfNnIndex, OrpKwIndex
from repro.bench.reporting import print_table
from repro.core.baselines import KeywordsOnlyIndex, StructuredOnlyIndex
from repro.workloads.scenarios import (
    condition_c1,
    condition_c2,
    hotel_dataset,
    keywords_for,
)


def main() -> None:
    hotels = hotel_dataset(5000, seed=42)
    print(
        f"hotel relation: {len(hotels)} tuples, total tag mass N = "
        f"{hotels.total_doc_size}"
    )
    tags = keywords_for(["pool", "free-parking"])

    # ---- C1: rectangle condition + keywords (ORP-KW) ------------------------
    print("\n-- C1: price in [100, 200], rating >= 8, pool & free-parking --")
    orp = OrpKwIndex(hotels, k=2)
    structured = StructuredOnlyIndex(hotels)
    keywords = KeywordsOnlyIndex(hotels)

    rect = condition_c1(100.0, 200.0, 8.0)
    rows = []
    for name, runner in (
        ("OrpKwIndex (Thm 1)", lambda c: orp.query(rect, tags, counter=c)),
        ("structured-only naive", lambda c: structured.query_rect(rect, tags, c)),
        ("keywords-only naive", lambda c: keywords.query_rect(rect, tags, c)),
    ):
        counter = CostCounter()
        found = runner(counter)
        rows.append({"solution": name, "answers": len(found), "cost_units": counter.total})
    print_table(rows, title="same answers, very different work:")

    sample = sorted(orp.query(rect, tags), key=lambda h: h.point[0])[:5]
    for hotel in sample:
        print(f"  ${hotel.point[0]:6.0f}/night  rating {hotel.point[1]:.1f}")

    # ---- C2: linear trade-off condition + keywords (LC-KW) -------------------
    print("\n-- C2: price + 60*(10 - rating) <= 400, pool & free-parking --")
    lc = LcKwIndex(hotels, k=2)
    constraint = condition_c2(1.0, 60.0, 400.0)
    rows = []
    for name, runner in (
        ("LcKwIndex (Thm 5)", lambda c: lc.query([constraint], tags, counter=c)),
        (
            "structured-only naive",
            lambda c: structured.query_constraints([constraint], tags, c),
        ),
        (
            "keywords-only naive",
            lambda c: keywords.query_constraints([constraint], tags, c),
        ),
    ):
        counter = CostCounter()
        found = runner(counter)
        rows.append({"solution": name, "answers": len(found), "cost_units": counter.total})
    print_table(rows, title="the joint constraint, three ways:")

    # ---- nearest hotels with keywords (Corollary 4) ---------------------------
    print("-- 3 hotels closest to ($150, rating 9.0) with pool & free-parking --")
    nn = LinfNnIndex(hotels, k=2)
    for hotel in nn.query((150.0, 9.0), 3, tags):
        print(f"  hotel {hotel.oid}: ${hotel.point[0]:.0f}, rating {hotel.point[1]:.1f}")


if __name__ == "__main__":
    main()

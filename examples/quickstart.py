"""Quickstart: index a small dataset and run every query type.

Run with:  python examples/quickstart.py
"""

from repro import (
    CostCounter,
    Dataset,
    HalfSpace,
    LcKwIndex,
    LinfNnIndex,
    OrpKwIndex,
    Rect,
    SrpKwIndex,
)

# ---------------------------------------------------------------------------
# 1. A dataset is a set of points, each with a document of integer keywords.
#    The input size N is the *total document mass*, not the object count.
# ---------------------------------------------------------------------------
POINTS = [
    (120.0, 8.5),  # hotel 0: $120/night, rating 8.5
    (180.0, 9.1),  # hotel 1
    (90.0, 7.0),   # hotel 2
    (220.0, 9.7),  # hotel 3
    (150.0, 8.1),  # hotel 4
]
POOL, PARKING, PETS = 1, 2, 3
DOCS = [
    {POOL, PARKING, PETS},
    {POOL, PETS},
    {POOL, PARKING},
    {PARKING, PETS},
    {POOL, PARKING, PETS},
]

data = Dataset.from_points(POINTS, DOCS)
print(f"dataset: {len(data)} objects, N = {data.total_doc_size}, "
      f"W = {data.num_keywords} distinct keywords")

# ---------------------------------------------------------------------------
# 2. ORP-KW (Theorem 1): rectangle range + keywords.  Every index fixes the
#    number of query keywords k at build time.
# ---------------------------------------------------------------------------
orp = OrpKwIndex(data, k=2)
price_rating_box = Rect((100.0, 8.0), (200.0, 10.0))
hits = orp.query(price_rating_box, [POOL, PETS])
print("\nORP-KW: price in [100, 200], rating >= 8, pool & pet-friendly:")
for hotel in sorted(hits, key=lambda h: h.oid):
    print(f"  hotel {hotel.oid}: price={hotel.point[0]:.0f} rating={hotel.point[1]}")

# ---------------------------------------------------------------------------
# 3. LC-KW (Theorem 5): any conjunction of linear constraints + keywords.
#    Example: price + 40*(10 - rating) <= 260  (cheap OR excellent).
# ---------------------------------------------------------------------------
lc = LcKwIndex(data, k=2)
tradeoff = HalfSpace((1.0, -40.0), 260.0 - 400.0)  # price - 40*rating <= -140
hits = lc.query([tradeoff], [POOL, PARKING])
print("\nLC-KW: price + 40*(10-rating) <= 260, pool & parking:")
for hotel in sorted(hits, key=lambda h: h.oid):
    print(f"  hotel {hotel.oid}: price={hotel.point[0]:.0f} rating={hotel.point[1]}")

# ---------------------------------------------------------------------------
# 4. Nearest neighbour with keywords (Corollary 4) and spherical range
#    reporting (Corollary 6).
# ---------------------------------------------------------------------------
nn = LinfNnIndex(data, k=2)
closest = nn.query((150.0, 9.0), 2, [POOL, PETS])
print("\nL∞NN-KW: 2 hotels nearest to (price 150, rating 9), pool & pets:")
for hotel in closest:
    print(f"  hotel {hotel.oid}: price={hotel.point[0]:.0f} rating={hotel.point[1]}")

srp = SrpKwIndex(data, k=2)
nearby = srp.query((150.0, 8.5), 40.0, [POOL, PARKING])
print("\nSRP-KW: within L2 distance 40 of (150, 8.5), pool & parking:")
print(f"  hotels {sorted(h.oid for h in nearby)}")

# ---------------------------------------------------------------------------
# 5. Cost accounting: every query can carry a CostCounter that tallies
#    RAM-model units (the quantity the paper's theorems bound).
# ---------------------------------------------------------------------------
counter = CostCounter()
orp.query(price_rating_box, [POOL, PETS], counter=counter)
print(f"\ncost of the ORP-KW query: {counter.total} units "
      f"({dict(counter.counts)})")

# ---------------------------------------------------------------------------
# 6. Explain: a structural breakdown of where a query spent its time.
# ---------------------------------------------------------------------------
stats = orp.explain(price_rating_box, [POOL, PETS])
print("\nexplain(ORP-KW query):")
print(stats.describe())

"""Geographic keyword search over bounding boxes: RR-KW with d = 2.

The paper motivates d >= 2 rectangle reporting with "geographic entities
whose regions are modeled as minimum bounding rectangles" [34].  This
example builds a synthetic city of venues (each an MBR with amenity tags),
answers "which venues overlapping this map viewport have both tags?" with
the Corollary-3 index, and contrasts the worst-case picture with the
system-community IR-tree on point data.

Run with:  python examples/geo_regions.py
"""

import random

from repro import CostCounter, Dataset, Rect, RectangleObject
from repro.bench.reporting import print_table
from repro.core.baselines import NaiveRectangleIndex
from repro.core.orp_kw import OrpKwIndex
from repro.core.rr_kw import RrKwIndex
from repro.irtree import IrTree

AMENITIES = {
    "cafe": 1,
    "wifi": 2,
    "outdoor-seating": 3,
    "wheelchair": 4,
    "parking": 5,
    "takeaway": 6,
}


def build_city(num_venues: int, seed: int = 0):
    """Venues as MBRs in a 10km x 10km city with correlated tags."""
    rng = random.Random(seed)
    venues = []
    for oid in range(num_venues):
        x, y = rng.uniform(0, 10), rng.uniform(0, 10)
        w, h = rng.uniform(0.005, 0.05), rng.uniform(0.005, 0.05)
        tags = {AMENITIES["cafe"]} if rng.random() < 0.4 else set()
        for tag in ("wifi", "outdoor-seating", "wheelchair", "parking", "takeaway"):
            if rng.random() < 0.3:
                tags.add(AMENITIES[tag])
        if not tags:
            tags.add(AMENITIES["takeaway"])
        venues.append(
            RectangleObject(oid=oid, lo=(x, y), hi=(x + w, y + h), doc=frozenset(tags))
        )
    return venues


def main() -> None:
    venues = build_city(3000, seed=7)
    index = RrKwIndex(venues, k=2)
    naive = NaiveRectangleIndex(venues)
    print(f"city: {len(venues)} venues, tag mass N = {index.input_size}")

    viewport = ((4.0, 4.0), (6.0, 6.0))
    tags = [AMENITIES["cafe"], AMENITIES["wifi"]]

    rows = []
    answers = {}
    for name, runner in (
        ("RrKwIndex (Cor 3)", lambda c: index.query(viewport[0], viewport[1], tags, counter=c)),
        ("scan all venues", lambda c: naive.query_structured(viewport[0], viewport[1], tags, c)),
        ("posting-list scan", lambda c: naive.query_keywords(viewport[0], viewport[1], tags, c)),
    ):
        counter = CostCounter()
        found = runner(counter)
        answers[name] = sorted(v.oid for v in found)
        rows.append({"solution": name, "answers": len(found), "cost_units": counter.total})
    assert len({tuple(a) for a in answers.values()}) == 1
    print_table(rows, title="cafes with wifi overlapping the viewport:")

    # The worst-case story: centroid points, one ubiquitous tag pair that
    # never co-occurs -- the IR-tree cannot prune, Theorem 1 can.
    rng = random.Random(1)
    n = 4000
    points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]
    docs = [[1] if i % 2 == 0 else [2] for i in range(n)]
    ds = Dataset.from_points(points, docs)
    irtree = IrTree(ds)
    theorem1 = OrpKwIndex(ds, k=2)
    rows = []
    for name, runner in (
        ("IR-tree (system community)", lambda c: irtree.query(Rect.full(2), [1, 2], counter=c)),
        ("OrpKwIndex (this paper)", lambda c: theorem1.query(Rect.full(2), [1, 2], counter=c)),
    ):
        counter = CostCounter()
        found = runner(counter)
        rows.append({"index": name, "answers": len(found), "cost_units": counter.total})
    print_table(
        rows,
        title="adversarial tags (never co-occur): why worst-case bounds matter:",
    )


if __name__ == "__main__":
    main()

"""Real text in, guarantees out: the tokenization layer end to end.

Builds a small review corpus with (price, rating) attributes, turns the raw
text into the paper's integer-keyword model via :mod:`repro.text`, indexes
it, and serves mixed structured+keyword queries — including the hybrid
planner that races the fused index against the naive strategies.

Run with:  python examples/text_search.py
"""

import random

from repro import CostCounter, Rect
from repro.bench.reporting import print_table
from repro.core.planner import HybridPlanner
from repro.text import dataset_from_texts

PHRASES = {
    "budget": ["cheap and cheerful", "great value", "bargain stay", "basic but clean"],
    "family": ["kids loved the pool", "family friendly", "close to the playground"],
    "luxury": ["spa was superb", "five star service", "rooftop bar with a view"],
    "work": ["fast wifi", "quiet desk", "close to the convention center"],
}


def synth_review(rng) -> str:
    theme = rng.choice(list(PHRASES))
    parts = rng.sample(PHRASES[theme], k=min(2, len(PHRASES[theme])))
    extras = rng.sample(
        ["free parking", "friendly staff", "good breakfast", "pet friendly"],
        k=rng.randint(0, 2),
    )
    return ". ".join(parts + extras)


def main() -> None:
    rng = random.Random(4)
    count = 2000
    points = []
    texts = []
    for _ in range(count):
        price = rng.lognormvariate(4.8, 0.5)
        rating = min(10.0, max(0.0, rng.gauss(7.5, 1.5)))
        points.append((price, rating))
        texts.append(synth_review(rng))

    vocab, data = dataset_from_texts(points, texts, min_count=2)
    print(
        f"corpus: {count} reviews, vocabulary {len(vocab)} tokens, "
        f"N = {data.total_doc_size}"
    )

    planner = HybridPlanner(data, k=2)
    queries = [
        ("wifi & quiet, any price", Rect.full(2), ("wifi", "quiet")),
        ("pool & family, under $150", Rect((0.0, 0.0), (150.0, 10.0)), ("pool", "family")),
        ("spa & rooftop, rating >= 8", Rect((0.0, 8.0), (10_000.0, 10.0)), ("spa", "rooftop")),
    ]
    rows = []
    for label, rect, tokens in queries:
        words = vocab.query_keywords(*tokens)
        counter = CostCounter()
        found = planner.query(rect, words, counter=counter)
        rows.append(
            {
                "query": label,
                "answers": len(found),
                "strategy": planner.last_plan["choice"],
                "cost_units": counter.total,
            }
        )
    print_table(rows, title="planned keyword+structured queries:")

    # Show one answer with its decoded document.
    words = vocab.query_keywords("wifi", "quiet")
    sample = planner.query(Rect.full(2), words)[:3]
    for obj in sample:
        tokens = sorted(vocab.decode(obj.doc))
        print(
            f"  review {obj.oid}: ${obj.point[0]:.0f}, rating "
            f"{obj.point[1]:.1f}, tokens={tokens}"
        )


if __name__ == "__main__":
    main()

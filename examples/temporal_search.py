"""Temporal keyword search: RR-KW with d = 1 (Corollary 3).

The paper cites keyword search over *versioned/temporal documents* [7] as
the d = 1 case of rectangle reporting with keywords: each document carries a
lifespan interval, and a query asks for the documents alive at some time
window that contain all the given keywords.

This example builds a synthetic revision history of wiki-style articles and
answers "which articles mentioning both 'database' and 'index' were live
during [t1, t2]?" through the Corollary-3 index, comparing against scans.

Run with:  python examples/temporal_search.py
"""

import random

from repro import CostCounter, RectangleObject
from repro.bench.reporting import print_table
from repro.core.baselines import NaiveRectangleIndex
from repro.core.rr_kw import RrKwIndex

#: Term vocabulary of the synthetic articles.
TERMS = {
    "database": 1,
    "index": 2,
    "keyword": 3,
    "geometry": 4,
    "theory": 5,
    "systems": 6,
    "hardware": 7,
    "networks": 8,
}


def build_revision_history(num_articles: int, seed: int = 0):
    """Each article version is an interval [created, superseded] plus terms."""
    rng = random.Random(seed)
    versions = []
    oid = 0
    for _article in range(num_articles):
        time = rng.uniform(0.0, 80.0)
        for _revision in range(rng.randint(1, 4)):
            lifespan = rng.uniform(0.5, 10.0)
            terms = frozenset(
                rng.sample(sorted(TERMS.values()), rng.randint(1, 4))
            )
            versions.append(
                RectangleObject(
                    oid=oid, lo=(time,), hi=(time + lifespan,), doc=terms
                )
            )
            oid += 1
            time += lifespan
    return versions


def main() -> None:
    versions = build_revision_history(4000, seed=9)
    index = RrKwIndex(versions, k=2)
    naive = NaiveRectangleIndex(versions)
    print(
        f"revision history: {len(versions)} versions, term mass N = "
        f"{index.input_size}"
    )

    window = (30.0, 32.0)
    words = [TERMS["database"], TERMS["index"]]

    rows = []
    answers = {}
    for name, runner in (
        ("RrKwIndex (Cor 3)", lambda c: index.query((window[0],), (window[1],), words, counter=c)),
        ("scan all versions", lambda c: naive.query_structured((window[0],), (window[1],), words, c)),
        ("posting-list scan", lambda c: naive.query_keywords((window[0],), (window[1],), words, c)),
    ):
        counter = CostCounter()
        found = runner(counter)
        answers[name] = sorted(v.oid for v in found)
        rows.append({"solution": name, "answers": len(found), "cost_units": counter.total})

    assert len(set(map(tuple, answers.values()))) == 1, "solutions disagree!"
    print_table(
        rows,
        title=f"versions alive during {window} mentioning 'database' & 'index':",
    )

    sample = answers["RrKwIndex (Cor 3)"][:5]
    for oid in sample:
        version = next(v for v in versions if v.oid == oid)
        print(
            f"  version {oid}: alive [{version.lo[0]:5.1f}, {version.hi[0]:5.1f}]"
        )


if __name__ == "__main__":
    main()

"""Living data: insertions, deletions, and persistence.

The paper's indexes are static; this example shows the extension layer a
deployment needs — the logarithmic-method dynamization
(:class:`~repro.core.dynamic.DynamicOrpKw`) under churn, and saving/loading
a built static index (:mod:`repro.persist`).

Run with:  python examples/dynamic_updates.py
"""

import random
import tempfile
from pathlib import Path

from repro import CostCounter, Dataset, DynamicOrpKw, OrpKwIndex, Rect
from repro.persist import load_index, save_index


def main() -> None:
    rng = random.Random(11)
    index = DynamicOrpKw(k=2, dim=2)

    # Morning: listings appear.
    live = {}
    for _ in range(3000):
        point = (rng.uniform(0, 100), rng.uniform(0, 10))
        doc = frozenset(rng.sample(range(1, 13), rng.randint(1, 4)))
        oid = index.insert(point, doc)
        live[oid] = (point, doc)
    print(f"after inserts: {len(index)} live objects, buckets {index.bucket_sizes}")

    # Afternoon: a third of them churn out.
    victims = rng.sample(sorted(live), 1000)
    for oid in victims:
        index.delete(oid)
        del live[oid]
    print(f"after deletes: {len(index)} live objects, buckets {index.bucket_sizes}")

    # Queries stay exact throughout.
    rect = Rect((20.0, 6.0), (60.0, 10.0))
    words = [1, 2]
    counter = CostCounter()
    found = index.query(rect, words, counter=counter)
    expected = sorted(
        oid
        for oid, (point, doc) in live.items()
        if rect.contains_point(point) and set(words) <= doc
    )
    assert sorted(o.oid for o in found) == expected
    print(
        f"query over the churned index: {len(found)} answers, "
        f"{counter.total} cost units (exact, verified)"
    )

    # Nightly: freeze the live set into a static index and persist it.
    snapshot = Dataset.from_points(
        [p for p, _doc in live.values()], [doc for _p, doc in live.values()]
    )
    static = OrpKwIndex(snapshot, k=2)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "nightly.idx"
        save_index(static, path)
        size_kb = path.stat().st_size / 1024
        restored = load_index(path, expected_class=OrpKwIndex)
        a = sorted(o.oid for o in static.query(rect, words))
        b = sorted(o.oid for o in restored.query(rect, words))
        assert a == b
        print(
            f"nightly snapshot: {len(snapshot)} objects -> {size_kb:.0f} KiB "
            f"on disk, answers identical after reload"
        )


if __name__ == "__main__":
    main()
